package server

import (
	"context"
	"encoding/json"
	"time"

	"fits"
	"fits/internal/evolve"
	"fits/internal/firmware"
	"fits/internal/optbuild"
)

// api.go defines the wire types of the fitsd job API, shared verbatim by
// the server handlers and the typed client package. All result JSON is
// deliberately byte-stable: field order is fixed by the struct layout,
// candidate and alert orders carry explicit deterministic sort keys, and
// timing/cache diagnostics live on the job envelope — never inside the
// result — so resubmitting identical firmware yields identical result
// bytes.

// Job states, as reported in JobStatus.State.
const (
	StateQueued  = "queued"
	StateRunning = "running"
	StateDone    = "done"
	StateFailed  = "failed"
	// StateInterrupted marks a job that was mid-run when the daemon
	// crashed: its work is lost but its submission was acknowledged, so
	// on restart it is reported terminal-and-retryable rather than
	// silently dropped. Resubmitting the same bytes re-runs it (or, if a
	// result reached disk first, serves it instantly).
	StateInterrupted = "interrupted"
	StateCanceled    = "canceled"
)

// TerminalState reports whether a job in this state will never run again.
func TerminalState(s string) bool {
	return s == StateDone || s == StateFailed || s == StateCanceled || s == StateInterrupted
}

// Failure reasons, reported in JobStatus.Reason alongside State "failed"
// so callers can distinguish retryable from permanent failures.
const (
	// ReasonCorrupt marks a job that failed because the submitted image
	// is malformed (the error chain includes firmware.ErrCorrupt);
	// fetching its result yields 422, and retrying the same bytes can
	// never succeed.
	ReasonCorrupt = "corrupt_image"
	// ReasonPanic marks a job whose analysis panicked on a hostile image;
	// the panic was confined to the job and the daemon stayed up.
	ReasonPanic = "panic"
)

// KindDiff marks a job submitted via POST /v1/diffs; KindCorpus one
// submitted via POST /v1/corpora. Plain analysis jobs have an empty kind.
const (
	KindDiff   = "diff"
	KindCorpus = "corpus"
)

// SubmitRequest is the JSON body of POST /v1/jobs. Exactly one of Firmware
// (base64 image bytes) and Path (a file readable by the server process)
// must be set. A raw application/octet-stream body is the shorthand for
// {"firmware": <body>} with default options.
type SubmitRequest struct {
	Firmware []byte        `json:"firmware,omitempty"`
	Path     string        `json:"path,omitempty"`
	Options  optbuild.Spec `json:"options"`
}

// DiffSubmitRequest is the JSON body of POST /v1/diffs. Each side names its
// firmware exactly one way: inline base64 bytes or a path readable by the
// server process. The two sides may mix transports.
type DiffSubmitRequest struct {
	OldFirmware []byte        `json:"old_firmware,omitempty"`
	NewFirmware []byte        `json:"new_firmware,omitempty"`
	OldPath     string        `json:"old_path,omitempty"`
	NewPath     string        `json:"new_path,omitempty"`
	Options     optbuild.Spec `json:"options"`
}

// CorpusSubmitRequest is the JSON body of POST /v1/corpora. Exactly one of
// Corpus (the base64 bytes of a fits.PackCorpus container) and Path (a
// packed corpus file readable by the server process) must be set. A raw
// application/octet-stream body is the shorthand for {"corpus": <body>}
// with default options. The result is the CorpusReport JSON of fits.XScan.
type CorpusSubmitRequest struct {
	Corpus  []byte        `json:"corpus,omitempty"`
	Path    string        `json:"path,omitempty"`
	Options optbuild.Spec `json:"options"`
}

// SubmitResponse is the 202 body of POST /v1/jobs.
type SubmitResponse struct {
	ID string `json:"id"`
	// Location is the relative URL polled for status.
	Location string `json:"location"`
	State    string `json:"state"`
}

// CacheDelta reports model reuse for one job: models lifted fresh vs.
// served from the process-wide cache.
type CacheDelta struct {
	Lifted int `json:"lifted"`
	Reused int `json:"reused"`
}

// JobStatus is one job as reported by GET /v1/jobs and GET /v1/jobs/{id}.
type JobStatus struct {
	ID    string `json:"id"`
	State string `json:"state"`
	// Kind is "diff" for evolution diffs, empty for plain analyses.
	Kind        string        `json:"kind,omitempty"`
	SHA256      string        `json:"sha256"`
	SizeBytes   int           `json:"size_bytes"`
	Options     optbuild.Spec `json:"options"`
	SubmittedAt time.Time     `json:"submitted_at"`
	StartedAt   *time.Time    `json:"started_at,omitempty"`
	FinishedAt  *time.Time    `json:"finished_at,omitempty"`
	// ElapsedMS is the run duration (started→finished); diagnostic, like
	// Cache, and therefore not part of Result.
	ElapsedMS int64  `json:"elapsed_ms,omitempty"`
	Error     string `json:"error,omitempty"`
	// Reason classifies a failure ("corrupt_image", "panic"); empty for
	// ordinary errors and non-failed states.
	Reason string      `json:"reason,omitempty"`
	Cache  *CacheDelta `json:"cache,omitempty"`
	// Progress is the most recent coarse progress line of a running corpus
	// job ("round 2: 5 binaries, 3 tainted endpoints"); empty otherwise.
	Progress string `json:"progress,omitempty"`
	// Result is the analysis result JSON, present once State is "done"
	// (also served raw by GET /v1/jobs/{id}/result).
	Result json.RawMessage `json:"result,omitempty"`
}

// ListResponse is the body of GET /v1/jobs.
type ListResponse struct {
	Jobs []JobStatus `json:"jobs"`
}

// ErrorResponse is the body of every non-2xx JSON response.
type ErrorResponse struct {
	Error string `json:"error"`
}

// HealthResponse is the body of GET /healthz (503 while draining).
type HealthResponse struct {
	Status   string `json:"status"`
	Draining bool   `json:"draining,omitempty"`
}

// JobResult is the stable analysis result of one firmware image.
type JobResult struct {
	Vendor  string         `json:"vendor"`
	Product string         `json:"product"`
	Version string         `json:"version"`
	Targets []TargetReport `json:"targets"`
}

// TargetReport is the per-network-binary slice of a JobResult.
type TargetReport struct {
	Path       string            `json:"path"`
	Binary     string            `json:"binary"`
	NumFuncs   int               `json:"num_funcs"`
	Candidates []CandidateReport `json:"candidates"`
	// Alerts is present only when the job requested a taint scan.
	Alerts []AlertReport `json:"alerts,omitempty"`
}

// CandidateReport is one ranked ITS candidate.
type CandidateReport struct {
	Entry uint32  `json:"entry"`
	Score float64 `json:"score"`
}

// AlertReport is one taint alert. Degraded marks alerts from functions
// where an analysis budget tripped (reaching-definition fixpoint or alias
// fact budget), so consumers can see where precision silently fell back.
type AlertReport struct {
	Site     uint32 `json:"site"`
	Func     uint32 `json:"func"`
	Sink     string `json:"sink"`
	Kind     string `json:"kind"`
	Source   string `json:"source"`
	Degraded bool   `json:"degraded,omitempty"`
}

// DiffJobResult is the stable result of one evolution diff. Like JobResult
// it is byte-stable: all orders are deterministic and no wall-clock values
// appear, so resubmitting the same version pair yields identical bytes.
type DiffJobResult struct {
	Vendor     string `json:"vendor"`
	Product    string `json:"product"`
	OldVersion string `json:"old_version"`
	NewVersion string `json:"new_version"`
	// ReusedFuncs / TotalFuncs count the new version's functions whose
	// analysis was carried over from the old version.
	ReusedFuncs     int                `json:"reused_funcs"`
	TotalFuncs      int                `json:"total_funcs"`
	ReuseRatio      float64            `json:"reuse_ratio"`
	AlertsAppeared  int                `json:"alerts_appeared"`
	AlertsFixed     int                `json:"alerts_fixed"`
	AlertsPersisted int                `json:"alerts_persisted"`
	ITSAppeared     int                `json:"its_appeared"`
	ITSFixed        int                `json:"its_fixed"`
	ITSPersisted    int                `json:"its_persisted"`
	Targets         []DiffTargetReport `json:"targets"`
}

// DiffTargetReport is the per-binary slice of a DiffJobResult.
type DiffTargetReport struct {
	Path              string            `json:"path"`
	MatchedIdentical  int               `json:"matched_identical"`
	MatchedReuse      int               `json:"matched_reuse"`
	MatchedName       int               `json:"matched_name"`
	MatchedSimilarity int               `json:"matched_similarity"`
	UnmatchedNew      int               `json:"unmatched_new"`
	UnmatchedOld      int               `json:"unmatched_old"`
	Renames           []RenameReport    `json:"renames,omitempty"`
	Appeared          []DiffAlertReport `json:"appeared"`
	Fixed             []DiffAlertReport `json:"fixed"`
	Persisted         []DiffAlertReport `json:"persisted"`
}

// RenameReport is one function rename recovered by the similarity fallback.
type RenameReport struct {
	OldName    string  `json:"old_name"`
	NewName    string  `json:"new_name"`
	OldEntry   uint32  `json:"old_entry"`
	NewEntry   uint32  `json:"new_entry"`
	Similarity float64 `json:"similarity"`
}

// DiffAlertReport is one churned or persisted alert, in the coordinates of
// the version it exists in (new for appeared/persisted, old for fixed).
type DiffAlertReport struct {
	Binary string `json:"binary"`
	Site   uint32 `json:"site"`
	Func   uint32 `json:"func"`
	Sink   string `json:"sink"`
	Kind   string `json:"kind"`
	Source string `json:"source"`
}

// RunOutput is what a Runner hands back for a completed job.
type RunOutput struct {
	// ResultJSON is the marshaled JobResult; it is stored and served
	// verbatim, so equal inputs must produce equal bytes.
	ResultJSON []byte
	Cache      CacheDelta
	// Diff carries the reuse ratio and stage timings of a diff job, for
	// metrics only — never part of ResultJSON, which must stay byte-stable.
	Diff *DiffStats
	// Corpus carries a corpus job's headline numbers, for metrics only.
	Corpus *CorpusStats
}

// DiffStats is the diagnostic slice of a finished diff job.
type DiffStats struct {
	ReuseRatio float64
	Timings    fits.DiffStageTimings
}

// CorpusStats is the diagnostic slice of a finished corpus job, feeding the
// fitsd_corpus_* metrics.
type CorpusStats struct {
	Binaries    int
	Rounds      int
	CrossAlerts int
}

// RunEnv is the server-provided execution environment of one job: the
// process-wide model cache, the worker-pool scheduler shared by every job
// (so concurrent jobs draw analysis goroutines from one budget instead of
// each sizing its own fan-out), and the job's stage timer, whose per-stage
// costs land in the /metrics histograms. Any field may be nil.
type RunEnv struct {
	Cache  *fits.Cache
	Sched  *fits.Scheduler
	Stages *fits.StageTimer
	// Progress receives coarse progress lines from long-running jobs; the
	// server surfaces the latest one in the job's status. May be nil.
	Progress func(string)
	// Truncated is called once per degraded alert (an analysis budget
	// tripped in the alert's function), feeding
	// fitsd_analysis_truncated_total. May be nil.
	Truncated func()
}

// Runner executes one job. The default is DefaultRunner; tests substitute
// stub pipelines to exercise queueing, cancellation and drain without
// firmware fixtures.
type Runner func(ctx context.Context, raw []byte, spec optbuild.Spec, env RunEnv) (*RunOutput, error)

// DefaultRunner runs the full fits pipeline: inference over every network
// binary, optionally followed by a taint scan, reported as a JobResult.
func DefaultRunner(ctx context.Context, raw []byte, spec optbuild.Spec, env RunEnv) (*RunOutput, error) {
	aopts, err := spec.AnalyzeOptions(env.Cache)
	if err != nil {
		return nil, err
	}
	aopts.Scheduler = env.Sched
	aopts.Stages = env.Stages
	res, err := fits.AnalyzeContext(ctx, raw, aopts)
	if err != nil {
		return nil, err
	}
	jr := JobResult{
		Vendor:  res.Vendor,
		Product: res.Product,
		Version: res.Version,
		Targets: make([]TargetReport, 0, len(res.Targets)),
	}
	for _, t := range res.Targets {
		tr := TargetReport{Path: t.Path, Binary: t.Binary, NumFuncs: t.NumFuncs}
		for _, c := range t.TopCandidates(spec.TopK) {
			tr.Candidates = append(tr.Candidates, CandidateReport{Entry: c.Entry, Score: c.Score})
		}
		if tr.Candidates == nil {
			tr.Candidates = []CandidateReport{}
		}
		if spec.Scan {
			sopts, err := spec.ScanOptions(t)
			if err != nil {
				return nil, err
			}
			alerts, err := t.ScanContext(ctx, sopts)
			if err != nil {
				return nil, err
			}
			tr.Alerts = make([]AlertReport, 0, len(alerts))
			for _, a := range alerts {
				tr.Alerts = append(tr.Alerts, AlertReport{
					Site: a.Site, Func: a.Func, Sink: a.Sink,
					Kind: a.Kind, Source: a.Source, Degraded: a.Degraded,
				})
				if a.Degraded && env.Truncated != nil {
					env.Truncated()
				}
			}
		}
		jr.Targets = append(jr.Targets, tr)
	}
	b, err := json.Marshal(jr)
	if err != nil {
		return nil, err
	}
	return &RunOutput{
		ResultJSON: b,
		Cache:      CacheDelta{Lifted: res.Cache.Lifted, Reused: res.Cache.Reused},
	}, nil
}

// DiffRunner executes one diff job. The default is DefaultDiffRunner.
type DiffRunner func(ctx context.Context, oldRaw, newRaw []byte, spec optbuild.Spec, env RunEnv) (*RunOutput, error)

// DefaultDiffRunner runs the evolution pipeline: both versions are analyzed
// and scanned, the new one incrementally against the old, and the churn
// report is rendered as a DiffJobResult.
func DefaultDiffRunner(ctx context.Context, oldRaw, newRaw []byte, spec optbuild.Spec, env RunEnv) (*RunOutput, error) {
	dopts, err := spec.DiffOptions(env.Cache)
	if err != nil {
		return nil, err
	}
	dopts.Scheduler = env.Sched
	dopts.Stages = env.Stages
	d, err := fits.DiffContext(ctx, oldRaw, newRaw, dopts)
	if err != nil {
		return nil, err
	}
	r := d.Report
	jr := DiffJobResult{
		Vendor:          d.New.Vendor,
		Product:         d.New.Product,
		OldVersion:      d.Old.Version,
		NewVersion:      d.New.Version,
		ReusedFuncs:     r.ReusedFuncs,
		TotalFuncs:      r.TotalFuncs,
		ReuseRatio:      r.ReuseRatio,
		AlertsAppeared:  r.AlertsAppeared,
		AlertsFixed:     r.AlertsFixed,
		AlertsPersisted: r.AlertsPersisted,
		ITSAppeared:     r.ITSAppeared,
		ITSFixed:        r.ITSFixed,
		ITSPersisted:    r.ITSPersisted,
		Targets:         make([]DiffTargetReport, 0, len(r.Targets)),
	}
	for _, td := range r.Targets {
		tr := DiffTargetReport{
			Path:              td.Path,
			MatchedIdentical:  td.MatchedIdentical,
			MatchedReuse:      td.MatchedReuse,
			MatchedName:       td.MatchedName,
			MatchedSimilarity: td.MatchedSimilarity,
			UnmatchedNew:      td.UnmatchedNew,
			UnmatchedOld:      td.UnmatchedOld,
			Appeared:          diffAlertReports(td.Appeared),
			Fixed:             diffAlertReports(td.Fixed),
			Persisted:         diffAlertReports(td.Persisted),
		}
		for _, rn := range td.Renames {
			tr.Renames = append(tr.Renames, RenameReport{
				OldName: rn.OldName, NewName: rn.NewName,
				OldEntry: rn.OldEntry, NewEntry: rn.NewEntry,
				Similarity: rn.Similarity,
			})
		}
		jr.Targets = append(jr.Targets, tr)
	}
	b, err := json.Marshal(jr)
	if err != nil {
		return nil, err
	}
	return &RunOutput{
		ResultJSON: b,
		Cache: CacheDelta{
			Lifted: d.Old.Cache.Lifted + d.New.Cache.Lifted,
			Reused: d.Old.Cache.Reused + d.New.Cache.Reused,
		},
		Diff: &DiffStats{ReuseRatio: r.ReuseRatio, Timings: d.Timings},
	}, nil
}

// CorpusRunner executes one corpus job: raw is a packed corpus container
// (fits.PackCorpus bytes). The default is DefaultCorpusRunner.
type CorpusRunner func(ctx context.Context, raw []byte, spec optbuild.Spec, env RunEnv) (*RunOutput, error)

// DefaultCorpusRunner unpacks the corpus container and runs the
// cross-binary taint fixpoint over the file set. The result JSON is the
// CorpusReport verbatim — byte-stable across worker counts and cache
// temperature, so resubmitting an identical corpus yields identical bytes.
func DefaultCorpusRunner(ctx context.Context, raw []byte, spec optbuild.Spec, env RunEnv) (*RunOutput, error) {
	xopts, err := spec.XScanOptions(env.Cache)
	if err != nil {
		return nil, err
	}
	xopts.Scheduler = env.Sched
	xopts.Stages = env.Stages
	xopts.Progress = env.Progress
	img, err := firmware.Unpack(raw)
	if err != nil {
		return nil, err
	}
	files := make([]fits.CorpusFile, len(img.Files))
	for i, f := range img.Files {
		files[i] = fits.CorpusFile{Path: f.Path, Data: f.Data}
	}
	rep, err := fits.XScanContext(ctx, files, xopts)
	if err != nil {
		return nil, err
	}
	b, err := json.Marshal(rep)
	if err != nil {
		return nil, err
	}
	return &RunOutput{
		ResultJSON: b,
		Corpus: &CorpusStats{
			Binaries:    len(rep.Binaries),
			Rounds:      rep.Rounds,
			CrossAlerts: rep.CrossHit,
		},
	}, nil
}

func diffAlertReports(alerts []evolve.Alert) []DiffAlertReport {
	out := make([]DiffAlertReport, 0, len(alerts))
	for _, a := range alerts {
		out = append(out, DiffAlertReport{
			Binary: a.Binary, Site: a.Site, Func: a.Func,
			Sink: a.Sink, Kind: a.Kind, Source: a.Source,
		})
	}
	return out
}
