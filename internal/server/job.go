package server

import (
	"context"
	"errors"
	"sync"
	"time"

	"fits/internal/firmware"
	"fits/internal/optbuild"
)

// Job is the server-side record of one submission. It moves
// queued → running → {done, failed, canceled}; queued jobs may jump
// straight to canceled. All mutable fields are guarded by mu; handlers
// only ever see Snapshot copies.
type Job struct {
	id   string
	seq  uint64
	sha  string
	size int
	kind string // "" for analysis, KindDiff for evolution diffs; immutable
	spec optbuild.Spec
	// diskKey is the job's identity in the on-disk result store (content
	// hash + config epoch + options); empty when persistence is off.
	// Immutable after creation.
	diskKey string
	// loadResult lazily reads the result JSON of a crash-recovered done
	// job from the disk store, so boot replay does not pull every
	// historical result into memory. Immutable after creation.
	loadResult func() []byte

	mu        sync.Mutex
	state     string    // guarded by mu
	raw       []byte    // firmware bytes; dropped once the job is terminal; guarded by mu
	raw2      []byte    // diff jobs only: the new version's bytes; guarded by mu
	submitted time.Time // guarded by mu
	started   time.Time // guarded by mu
	finished  time.Time // guarded by mu
	err       string    // guarded by mu
	reason    string    // failure classification (ReasonCorrupt, ReasonPanic); guarded by mu
	result    []byte    // guarded by mu
	cache     CacheDelta // guarded by mu
	progress  string     // latest runner progress line, cleared when terminal; guarded by mu
	// cancelRequested distinguishes a DELETE-initiated abort from a
	// timeout or server drain when classifying the runner's error.
	cancelRequested bool               // guarded by mu
	drained         bool               // guarded by mu
	cancel          context.CancelFunc // non-nil while running; guarded by mu
}

// start transitions queued → running and derives the job context: the
// server base context, capped by the server job timeout and the job's own
// requested timeout. The firmware bytes are handed out under the lock so
// the worker never touches j.raw or j.raw2 unlocked; raw2 is nil except for
// diff jobs. It returns false (and no context) when the job was canceled
// while queued.
func (j *Job) start(base context.Context, serverTimeout time.Duration, now time.Time) (context.Context, []byte, []byte, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateQueued {
		return nil, nil, nil, false
	}
	var ctx context.Context
	var cancel context.CancelFunc
	if serverTimeout > 0 {
		ctx, cancel = context.WithTimeout(base, serverTimeout)
	} else {
		ctx, cancel = context.WithCancel(base)
	}
	if d := time.Duration(j.spec.Timeout); d > 0 {
		inner, innerCancel := context.WithTimeout(ctx, d)
		outerCancel := cancel
		ctx, cancel = inner, func() { innerCancel(); outerCancel() }
	}
	j.state = StateRunning
	j.started = now
	j.cancel = cancel
	return ctx, j.raw, j.raw2, true
}

// finish records the runner outcome and classifies the terminal state,
// returning it with the run duration so callers need no unlocked reads of
// the timing fields. The durable callback (nil allowed) runs under the
// job lock after classification but before the terminal state becomes
// observable: runJob persists the result and journals the finished
// record there, so no client ever reads a terminal state that a restart
// could not reproduce from disk.
func (j *Job) finish(out *RunOutput, err error, now time.Time, durable func(state, errStr string)) (state string, elapsed time.Duration) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.cancel != nil {
		j.cancel()
		j.cancel = nil
	}
	j.raw = nil
	j.raw2 = nil
	j.progress = ""
	j.finished = now
	var pe *panicError
	switch {
	case err == nil:
		j.state = StateDone
		j.result = out.ResultJSON
		j.cache = out.Cache
	case errors.As(err, &pe):
		// A panic is never reclassified as a cancellation: the job died on
		// its own input, and the captured stack is the diagnosis.
		j.state = StateFailed
		j.reason = ReasonPanic
		j.err = err.Error()
	case j.cancelRequested || j.drained || errors.Is(err, context.Canceled):
		j.state = StateCanceled
		j.err = "canceled"
	case errors.Is(err, context.DeadlineExceeded):
		j.state = StateFailed
		j.err = "job timeout exceeded"
	case errors.Is(err, firmware.ErrCorrupt):
		j.state = StateFailed
		j.reason = ReasonCorrupt
		j.err = err.Error()
	default:
		j.state = StateFailed
		j.err = err.Error()
	}
	if durable != nil {
		durable(j.state, j.err)
	}
	return j.state, j.finished.Sub(j.started)
}

// requestCancel implements DELETE: a queued job is canceled on the spot
// (the worker later skips it); a running one has its context canceled and
// is classified when the runner returns. The first return reports whether
// the job transitioned to canceled *now*; the second whether the request
// did anything at all.
func (j *Job) requestCancel(now time.Time) (terminalNow, ok bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	switch j.state {
	case StateQueued:
		j.state = StateCanceled
		j.err = "canceled"
		j.cancelRequested = true
		j.finished = now
		j.raw = nil
		j.raw2 = nil
		return true, true
	case StateRunning:
		j.cancelRequested = true
		if j.cancel != nil {
			j.cancel()
		}
		return false, true
	}
	return false, false
}

// setProgress records the latest progress line from the job's runner; the
// next status snapshot reports it. No-op once the job is terminal (a slow
// runner goroutine may still emit after cancellation).
func (j *Job) setProgress(msg string) {
	j.mu.Lock()
	if j.state == StateRunning {
		j.progress = msg
	}
	j.mu.Unlock()
}

// markDrained tags a running job as aborted by server drain before its
// context is hard-canceled, so finish classifies it as canceled rather
// than failed.
func (j *Job) markDrained() {
	j.mu.Lock()
	j.drained = true
	j.mu.Unlock()
}

// Snapshot renders the job as its wire representation. Result bytes are
// shared, not copied; they are write-once.
func (j *Job) Snapshot(includeResult bool) JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	s := JobStatus{
		ID:          j.id,
		State:       j.state,
		Kind:        j.kind,
		SHA256:      j.sha,
		SizeBytes:   j.size,
		Options:     j.spec,
		SubmittedAt: j.submitted,
	}
	if !j.started.IsZero() {
		t := j.started
		s.StartedAt = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		s.FinishedAt = &t
		if !j.started.IsZero() {
			s.ElapsedMS = j.finished.Sub(j.started).Milliseconds()
		}
	}
	s.Error = j.err
	s.Reason = j.reason
	s.Progress = j.progress
	if j.state == StateDone {
		d := j.cache
		s.Cache = &d
		if includeResult {
			s.Result = j.resultLocked()
		}
	}
	return s
}

// resultBytes returns the stored result JSON, or nil if the job is not
// done (or its recovered on-disk result is unreadable).
func (j *Job) resultBytes() []byte {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateDone {
		return nil
	}
	return j.resultLocked()
}

// resultLocked resolves the result bytes, pulling a crash-recovered job's
// result from the disk store on first use. Callers hold j.mu.
func (j *Job) resultLocked() []byte {
	if j.result == nil && j.loadResult != nil {
		j.result = j.loadResult()
	}
	return j.result
}

// currentState reads the state under the lock.
func (j *Job) currentState() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}
