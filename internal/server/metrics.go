package server

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// metrics.go is a minimal Prometheus-text-format instrumentation layer:
// counters, gauges, callback gauges and one histogram shape, rendered by a
// Registry in sorted name order so /metrics output is deterministic. It
// exists because the repo takes no dependencies; the exposition format
// (https://prometheus.io/docs/instrumenting/exposition_formats/) is simple
// enough to emit directly.

// Counter is a monotonically increasing metric.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value reads the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a metric that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the value by delta (negative to decrease).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value reads the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram counts observations into cumulative buckets, Prometheus-style.
type Histogram struct {
	mu      sync.Mutex
	bounds  []float64 // upper bounds, ascending; +Inf is implicit; immutable
	buckets []uint64  // len(bounds)+1, non-cumulative; guarded by mu
	sum     float64   // guarded by mu
	count   uint64    // guarded by mu
}

// NewHistogram builds a histogram over the given ascending upper bounds.
func NewHistogram(bounds ...float64) *Histogram {
	return &Histogram{bounds: bounds, buckets: make([]uint64, len(bounds)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i]++
	h.sum += v
	h.count++
}

// Count reads the number of observations.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// metric is one registered family.
type metric struct {
	name, help, typ string
	write           func(w io.Writer, name string)
}

// Registry holds registered metrics and renders them as Prometheus text.
type Registry struct {
	mu      sync.Mutex
	metrics []metric        // guarded by mu
	byName  map[string]bool // guarded by mu
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]bool{}}
}

func (r *Registry) register(name, help, typ string, write func(io.Writer, string)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.byName[name] {
		panic("server: duplicate metric " + name)
	}
	r.byName[name] = true
	r.metrics = append(r.metrics, metric{name: name, help: help, typ: typ, write: write})
}

// Counter registers and returns a counter. Counter names end in _total by
// Prometheus convention; that is up to the caller.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	r.register(name, help, "counter", func(w io.Writer, n string) {
		fmt.Fprintf(w, "%s %d\n", n, c.Value())
	})
	return c
}

// Gauge registers and returns a gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{}
	r.register(name, help, "gauge", func(w io.Writer, n string) {
		fmt.Fprintf(w, "%s %d\n", n, g.Value())
	})
	return g
}

// CounterFunc registers a counter whose value is read at scrape time from
// an external monotonic source (e.g. cache statistics).
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.register(name, help, "counter", func(w io.Writer, n string) {
		fmt.Fprintf(w, "%s %s\n", n, formatFloat(fn()))
	})
}

// GaugeFunc registers a gauge whose value is computed at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(name, help, "gauge", func(w io.Writer, n string) {
		fmt.Fprintf(w, "%s %s\n", n, formatFloat(fn()))
	})
}

// Histogram registers and returns a histogram with the given upper bounds.
func (r *Registry) Histogram(name, help string, bounds ...float64) *Histogram {
	h := NewHistogram(bounds...)
	r.register(name, help, "histogram", func(w io.Writer, n string) {
		h.mu.Lock()
		defer h.mu.Unlock()
		cum := uint64(0)
		for i, b := range h.bounds {
			cum += h.buckets[i]
			fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", n, formatFloat(b), cum)
		}
		cum += h.buckets[len(h.bounds)]
		fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", n, cum)
		fmt.Fprintf(w, "%s_sum %s\n", n, formatFloat(h.sum))
		fmt.Fprintf(w, "%s_count %d\n", n, h.count)
	})
	return h
}

// WriteText renders every metric in sorted name order with HELP/TYPE
// comments in the Prometheus text exposition format.
func (r *Registry) WriteText(w io.Writer) {
	r.mu.Lock()
	ms := make([]metric, len(r.metrics))
	copy(ms, r.metrics)
	r.mu.Unlock()
	sort.Slice(ms, func(i, j int) bool { return ms[i].name < ms[j].name })
	for _, m := range ms {
		fmt.Fprintf(w, "# HELP %s %s\n", m.name, m.help)
		fmt.Fprintf(w, "# TYPE %s %s\n", m.name, m.typ)
		m.write(w, m.name)
	}
}

// formatFloat renders floats the way Prometheus clients do: shortest
// round-trip representation, with NaN/Inf spelled out.
func formatFloat(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
