package server

import (
	"testing"
	"time"
)

// TestDeriveRetryAfter pins the derived backpressure hint: roughly the
// time for the queue ahead to drain plus one slot, clamped to [1, 60].
func TestDeriveRetryAfter(t *testing.T) {
	cases := []struct {
		name    string
		queued  int
		workers int
		avg     time.Duration
		want    int
	}{
		{"empty queue, no history", 0, 1, 0, 1},
		{"no history falls back to 1s per job", 3, 1, 0, 4},
		{"fast jobs round up to a second", 3, 2, 100 * time.Millisecond, 1},
		{"queue drains across workers", 10, 2, time.Second, 6},
		{"single worker", 10, 1, time.Second, 11},
		{"zero workers treated as one", 10, 0, time.Second, 11},
		{"fractional seconds round up", 1, 1, 700 * time.Millisecond, 2},
		{"clamped at the cap", 1000, 1, time.Minute, 60},
	}
	for _, tc := range cases {
		if got := deriveRetryAfter(tc.queued, tc.workers, tc.avg); got != tc.want {
			t.Errorf("%s: deriveRetryAfter(%d, %d, %s) = %d, want %d",
				tc.name, tc.queued, tc.workers, tc.avg, got, tc.want)
		}
	}
}

// TestLatencyTracker checks the ring: empty → 0, averaging, window
// eviction of old samples, and rejection of negative durations.
func TestLatencyTracker(t *testing.T) {
	var lt latencyTracker
	if got := lt.avg(); got != 0 {
		t.Fatalf("empty avg = %s, want 0", got)
	}
	lt.observe(2 * time.Second)
	lt.observe(4 * time.Second)
	if got := lt.avg(); got != 3*time.Second {
		t.Fatalf("avg = %s, want 3s", got)
	}
	lt.observe(-time.Second) // ignored
	if got := lt.avg(); got != 3*time.Second {
		t.Fatalf("avg after negative = %s, want 3s", got)
	}
	// Fill the window with 1s samples; the early outliers must age out.
	for i := 0; i < latencyWindow; i++ {
		lt.observe(time.Second)
	}
	if got := lt.avg(); got != time.Second {
		t.Fatalf("avg after window of 1s = %s, want 1s", got)
	}
}
