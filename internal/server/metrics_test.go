package server

import (
	"strings"
	"sync"
	"testing"
)

func TestRegistryRendering(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("b_total", "A counter.")
	g := r.Gauge("a_gauge", "A gauge.")
	r.GaugeFunc("c_dynamic", "A callback gauge.", func() float64 { return 2.5 })
	c.Add(3)
	g.Set(-7)
	var sb strings.Builder
	r.WriteText(&sb)
	out := sb.String()
	for _, want := range []string{
		"# HELP a_gauge A gauge.\n# TYPE a_gauge gauge\na_gauge -7\n",
		"# TYPE b_total counter\nb_total 3\n",
		"c_dynamic 2.5\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	// Sorted name order makes scrapes deterministic.
	if strings.Index(out, "a_gauge") > strings.Index(out, "b_total") ||
		strings.Index(out, "b_total") > strings.Index(out, "c_dynamic") {
		t.Errorf("metrics not sorted:\n%s", out)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "Latency.", 0.1, 1, 10)
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	var sb strings.Builder
	r.WriteText(&sb)
	out := sb.String()
	for _, want := range []string{
		`lat_seconds_bucket{le="0.1"} 1`,
		`lat_seconds_bucket{le="1"} 3`,
		`lat_seconds_bucket{le="10"} 4`,
		`lat_seconds_bucket{le="+Inf"} 5`,
		`lat_seconds_count 5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	if h.Count() != 5 {
		t.Errorf("Count = %d", h.Count())
	}
}

func TestHistogramBoundaryGoesToLowerBucket(t *testing.T) {
	h := NewHistogram(1)
	h.Observe(1) // le="1" is inclusive, Prometheus-style
	if h.buckets[0] != 1 || h.buckets[1] != 0 {
		t.Errorf("buckets = %v", h.buckets)
	}
}

func TestCountersConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x_total", "x")
	g := r.Gauge("y", "y")
	h := r.Histogram("z", "z", 1, 2)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 1000; k++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
				h.Observe(1.5)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 || g.Value() != 0 || h.Count() != 8000 {
		t.Errorf("c=%d g=%d h=%d", c.Value(), g.Value(), h.Count())
	}
}

func TestDuplicateMetricPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration did not panic")
		}
	}()
	r := NewRegistry()
	r.Counter("dup", "x")
	r.Counter("dup", "y")
}
