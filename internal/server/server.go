// Package server implements fitsd, the long-running analysis service: a
// job-oriented HTTP API over the fits pipeline with a bounded FIFO queue,
// a worker pool sharing one process-wide model cache, an LRU+TTL result
// store, Prometheus-text metrics, and graceful drain.
//
// The lifecycle of a submission:
//
//	POST /v1/jobs ── queue (bounded; full ⇒ 429 + Retry-After) ── worker
//	  ⇒ running (per-job context: base ∧ server timeout ∧ job timeout)
//	  ⇒ done | failed | canceled ── result store (LRU + TTL)
//
// Backpressure is explicit: the queue never blocks a request and never
// grows past its depth, so memory is bounded by depth × image size and
// callers see 429 instead of the server seeing OOM. Shutdown stops intake,
// cancels jobs still queued, lets in-flight jobs finish until the caller's
// deadline, then hard-cancels their contexts and waits for the workers.
//
// With Config.DataDir set the server is additionally crash-safe (see
// persist.go and internal/diskstore): accepted jobs are journaled before
// the 202 and replayed on boot, completed results are content-addressed
// on disk and served instantly on resubmission, and a panic in the
// analysis of a hostile image fails only that job.
package server

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"path/filepath"
	"runtime/debug"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"fits"
	"fits/internal/diskstore"
	"fits/internal/faultinj"
	"fits/internal/modelcache"
	"fits/internal/optbuild"
	"fits/internal/stagetime"
)

// Defaults for Config zero values.
const (
	DefaultWorkers        = 2
	DefaultQueueDepth     = 64
	DefaultStoreCap       = 1024
	DefaultStoreTTL       = time.Hour
	DefaultMaxUploadBytes = 256 << 20
)

// Config parameterizes a Server. The zero value is usable.
type Config struct {
	// Workers is the number of jobs run concurrently (default 2). Each job
	// additionally fans out internally per its Parallelism option, so the
	// product of the two is the upper bound on busy goroutines.
	Workers int
	// QueueDepth bounds jobs accepted but not yet running (default 64);
	// submissions beyond it are rejected with 429.
	QueueDepth int
	// JobTimeout caps any single job's run time (0 = unlimited). A job's
	// own requested timeout can only shorten it further.
	JobTimeout time.Duration
	// StoreCap bounds retained finished jobs (default 1024, LRU-evicted);
	// StoreTTL expires them by age (default 1h, 0 = never).
	StoreCap int
	StoreTTL time.Duration
	// MaxUploadBytes bounds a request body (default 256 MiB).
	MaxUploadBytes int64
	// Cache is the process-wide model cache shared by all workers; nil
	// disables model reuse across jobs.
	Cache *fits.Cache
	// Runner replaces the analysis pipeline (default DefaultRunner);
	// tests inject stubs to exercise queueing and drain.
	Runner Runner
	// DiffRunner replaces the evolution-diff pipeline behind POST /v1/diffs
	// (default DefaultDiffRunner).
	DiffRunner DiffRunner
	// CorpusRunner replaces the cross-binary corpus pipeline behind
	// POST /v1/corpora (default DefaultCorpusRunner).
	CorpusRunner CorpusRunner
	// DataDir enables the durability layer: a content-addressed on-disk
	// result store and a write-ahead journal for the job queue, rooted at
	// this directory. Empty disables persistence (the pre-existing,
	// memory-only behavior).
	DataDir string
	// Failpoints injects faults into the durability layer's filesystem
	// operations; nil (the default) disarms every point. Tests only.
	Failpoints *faultinj.Set
	// Logf receives one line per job transition; nil silences logging.
	Logf func(format string, args ...any)
}

func (c *Config) fill() {
	if c.Workers <= 0 {
		c.Workers = DefaultWorkers
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = DefaultQueueDepth
	}
	if c.StoreCap <= 0 {
		c.StoreCap = DefaultStoreCap
	}
	if c.StoreTTL == 0 {
		c.StoreTTL = DefaultStoreTTL
	}
	if c.MaxUploadBytes <= 0 {
		c.MaxUploadBytes = DefaultMaxUploadBytes
	}
	if c.Runner == nil {
		c.Runner = DefaultRunner
	}
	if c.DiffRunner == nil {
		c.DiffRunner = DefaultDiffRunner
	}
	if c.CorpusRunner == nil {
		c.CorpusRunner = DefaultCorpusRunner
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
}

// Server is the fitsd HTTP service. Create with New, serve it as an
// http.Handler, stop it with Shutdown.
type Server struct {
	cfg   Config
	store *store
	queue chan *Job
	mux   *http.ServeMux
	reg   *Registry

	baseCtx    context.Context
	baseCancel context.CancelFunc
	workerWG   sync.WaitGroup
	janitorWG  sync.WaitGroup
	stop       chan struct{}

	qmu      sync.Mutex // serializes queue send vs. close
	draining bool       // guarded by qmu

	seq     atomic.Uint64
	running sync.Map // job id -> *Job, jobs currently in a worker

	// persist and journal form the durability layer; both are nil when
	// Config.DataDir is empty. lat feeds the derived Retry-After.
	persist *diskstore.Store
	journal *diskstore.Journal
	lat     latencyTracker

	mAccepted      *Counter
	mRejected      *Counter
	mCompleted     *Counter
	mFailed        *Counter
	mCanceled      *Counter
	mPanics        *Counter
	mInterrupted   *Counter
	mDiskHits      *Counter
	mPersistErrors *Counter
	gRunning       *Gauge
	hDuration      *Histogram

	mCorpusJobs     *Counter
	mCorpusBinaries *Counter
	mCorpusCross    *Counter
	mTruncated      *Counter
	hCorpusRounds   *Histogram

	// diffReuse holds the float64 bits of the last completed diff's
	// function-reuse ratio, exported as fits_diff_reuse_ratio.
	diffReuse  atomic.Uint64
	hDiffStage map[string]*Histogram
	hStage     map[stagetime.Stage]*Histogram

	// sched is the analysis worker pool shared by every job: concurrent jobs
	// draw their model-building and inference fan-outs from one budget
	// instead of multiplying Workers × Parallelism goroutines.
	sched *fits.Scheduler

	now func() time.Time
}

// New builds a server and starts its workers and store janitor. With
// Config.DataDir set it also opens the durability layer and replays the
// job journal: jobs accepted but never started before the last crash are
// re-enqueued ahead of new submissions, jobs caught mid-run come back
// interrupted, and finished jobs reappear terminal with their results
// served from disk on demand.
func New(cfg Config) (*Server, error) {
	cfg.fill()
	s := &Server{
		cfg:  cfg,
		mux:  http.NewServeMux(),
		reg:  NewRegistry(),
		stop: make(chan struct{}),
		now:  time.Now,
	}
	s.store = newStore(cfg.StoreCap, cfg.StoreTTL, func() time.Time { return s.now() })
	//fitslint:ignore ctxflow server-lifetime root: every job context derives from it and Shutdown cancels it
	s.baseCtx, s.baseCancel = context.WithCancel(context.Background())

	s.mAccepted = s.reg.Counter("fitsd_jobs_accepted_total", "Jobs accepted into the queue.")
	s.mRejected = s.reg.Counter("fitsd_jobs_rejected_total", "Submissions rejected with 429 because the queue was full.")
	s.mCompleted = s.reg.Counter("fitsd_jobs_completed_total", "Jobs that finished successfully.")
	s.mFailed = s.reg.Counter("fitsd_jobs_failed_total", "Jobs that ended in an error (including timeouts).")
	s.mCanceled = s.reg.Counter("fitsd_jobs_canceled_total", "Jobs canceled by DELETE or server drain.")
	s.mPanics = s.reg.Counter("fitsd_job_panics_total", "Analysis panics recovered and confined to their job.")
	s.mInterrupted = s.reg.Counter("fitsd_jobs_interrupted_total", "Jobs found mid-run by journal replay after a crash.")
	s.mDiskHits = s.reg.Counter("fitsd_disk_hits_total", "Submissions answered from the on-disk result store without running.")
	s.mPersistErrors = s.reg.Counter("fitsd_persist_errors_total", "Non-fatal failures of the durability layer (journal appends, result writes).")
	s.gRunning = s.reg.Gauge("fitsd_jobs_running", "Jobs currently executing in a worker.")
	s.reg.GaugeFunc("fitsd_queue_depth", "Jobs accepted but not yet picked up by a worker.",
		func() float64 { return float64(len(s.queue)) })
	s.reg.GaugeFunc("fitsd_store_jobs", "Jobs currently retained (queued, running and finished).",
		func() float64 { n, _, _ := s.store.counts(); return float64(n) })
	s.reg.CounterFunc("fitsd_store_evicted_total", "Finished jobs dropped by LRU capacity or TTL expiry.",
		func() float64 { _, _, ev := s.store.counts(); return float64(ev) })
	s.hDuration = s.reg.Histogram("fitsd_job_duration_seconds", "Run duration of finished jobs.",
		0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60)
	s.reg.GaugeFunc("fits_diff_reuse_ratio", "Function-reuse ratio of the most recently completed diff job.",
		func() float64 { return math.Float64frombits(s.diffReuse.Load()) })
	s.mCorpusJobs = s.reg.Counter("fitsd_corpus_jobs_total", "Corpus scan jobs that completed successfully.")
	s.mCorpusBinaries = s.reg.Counter("fitsd_corpus_binaries_total", "Executable binaries analyzed across completed corpus jobs.")
	s.mCorpusCross = s.reg.Counter("fitsd_corpus_cross_alerts_total", "Cross-binary alerts reported by completed corpus jobs.")
	s.hCorpusRounds = s.reg.Histogram("fitsd_corpus_rounds", "Fixpoint rounds per completed corpus job.",
		1, 2, 3, 4, 5, 6, 7, 8)
	s.mTruncated = s.reg.Counter("fitsd_analysis_truncated_total",
		"Alerts reported from functions where an analysis budget tripped (reaching-definition fixpoint or alias fact budget).")
	// One analysis scheduler for the whole process, sized to GOMAXPROCS: the
	// per-job worker count then bounds job concurrency while this bounds the
	// total analysis goroutines those jobs fan out between them.
	s.sched = fits.NewScheduler(0)
	s.hStage = map[stagetime.Stage]*Histogram{}
	for _, st := range stagetime.Stages() {
		s.hStage[st] = s.reg.Histogram("fitsd_stage_"+st.String()+"_seconds",
			"Per-job wall time of the "+st.String()+" pipeline stage.",
			0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30)
	}
	s.hDiffStage = map[string]*Histogram{}
	for _, st := range [...]struct{ name, help string }{
		{"analyze_old", "Diff stage: analysis of the old version."},
		{"scan_old", "Diff stage: taint scan of the old version."},
		{"analyze_new", "Diff stage: incremental analysis of the new version."},
		{"scan_new", "Diff stage: taint scan of the new version."},
		{"align", "Diff stage: function alignment and churn computation."},
	} {
		s.hDiffStage[st.name] = s.reg.Histogram("fitsd_diff_"+st.name+"_seconds", st.help,
			0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30)
	}
	if c := cfg.Cache; c != nil {
		s.reg.CounterFunc("fitsd_model_cache_hits_total", "Model cache hits.",
			func() float64 { return float64(c.Stats().Hits) })
		s.reg.CounterFunc("fitsd_model_cache_misses_total", "Model cache misses.",
			func() float64 { return float64(c.Stats().Misses) })
		s.reg.CounterFunc("fitsd_model_cache_evictions_total", "Model cache evictions.",
			func() float64 { return float64(c.Stats().Evictions) })
		s.reg.GaugeFunc("fitsd_model_cache_bytes", "Approximate bytes of cached models.",
			func() float64 { return float64(c.Stats().Bytes) })
		s.reg.GaugeFunc("fitsd_model_cache_hit_ratio", "Hits / (hits+misses) over the cache lifetime.",
			func() float64 { return c.Stats().HitRate() })
	}

	// Open the durability layer and replay the journal before any worker
	// starts, so recovered jobs are enqueued ahead of new submissions and
	// no worker can observe a half-replayed store. The queue is sized up if
	// a crash left more acknowledged jobs than the configured depth —
	// replay must never drop what was 202'd.
	var requeue []*Job
	if cfg.DataDir != "" {
		var err error
		s.persist, err = diskstore.Open(cfg.DataDir, cfg.Failpoints)
		if err != nil {
			return nil, err
		}
		journal, recs, err := diskstore.OpenJournal(filepath.Join(cfg.DataDir, "journal.wal"), cfg.Failpoints)
		if err != nil {
			return nil, err
		}
		s.journal = journal
		var compact []diskstore.Record
		requeue, compact = s.replayJournal(recs)
		if err := journal.Rewrite(compact); err != nil {
			return nil, err
		}
		if len(recs) > 0 {
			s.cfg.Logf("journal replay: %d records, %d jobs re-enqueued", len(recs), len(requeue))
		}
		s.reg.CounterFunc("fitsd_disk_writes_total", "Result entries durably written to the disk store.",
			func() float64 { return float64(s.persist.Stats().Writes) })
		s.reg.CounterFunc("fitsd_disk_quarantined_total", "Corrupt on-disk entries quarantined instead of served.",
			func() float64 { return float64(s.persist.Stats().Quarantined) })
		s.reg.GaugeFunc("fitsd_disk_entries", "Result entries currently in the disk store.",
			func() float64 { return float64(s.persist.Stats().Entries) })
	}
	depth := cfg.QueueDepth
	if len(requeue) > depth {
		depth = len(requeue)
	}
	s.queue = make(chan *Job, depth)
	for _, j := range requeue {
		s.queue <- j
	}

	s.routes()
	for i := 0; i < cfg.Workers; i++ {
		s.workerWG.Add(1)
		go s.worker()
	}
	s.janitorWG.Add(1)
	go s.janitor()
	return s, nil
}

func (s *Server) routes() {
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("POST /v1/diffs", s.handleSubmitDiff)
	s.mux.HandleFunc("POST /v1/corpora", s.handleSubmitCorpus)
	s.mux.HandleFunc("GET /v1/jobs", s.handleList)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleGet)
	s.mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Registry exposes the metrics registry (for embedding fitsd metrics into
// a larger process).
func (s *Server) Registry() *Registry { return s.reg }

// errQueueFull and errDraining classify enqueue refusals.
var (
	errQueueFull = errors.New("queue full")
	errDraining  = errors.New("server draining")
)

func (s *Server) enqueue(j *Job) error {
	s.qmu.Lock()
	defer s.qmu.Unlock()
	if s.draining {
		return errDraining
	}
	select {
	case s.queue <- j:
		return nil
	default:
		return errQueueFull
	}
}

// worker drains the queue until it is closed by Shutdown.
func (s *Server) worker() {
	defer s.workerWG.Done()
	for j := range s.queue {
		s.runJob(j)
	}
}

func (s *Server) runJob(j *Job) {
	ctx, raw, raw2, ok := j.start(s.baseCtx, s.cfg.JobTimeout, s.now())
	if !ok {
		// Canceled while queued; already terminal and counted.
		return
	}
	s.journalStarted(j)
	s.running.Store(j.id, j)
	s.gRunning.Add(1)
	s.cfg.Logf("job %s: running (%d bytes, sha %s)", j.id, j.size, j.sha[:12])
	env := RunEnv{Cache: s.cfg.Cache, Sched: s.sched, Stages: new(fits.StageTimer), Progress: j.setProgress, Truncated: s.mTruncated.Inc}
	out, err := s.invokeRunner(ctx, j, raw, raw2, env)
	// Persist the result, then journal the terminal record, both before
	// the job's new state is observable (the callback runs under the job
	// lock): a client that reads "done" is guaranteed a restart replays
	// "done" with the result on disk. A crash between result and record
	// replays the job as interrupted (pessimistic but honest), never as
	// done-with-missing-result.
	state, elapsed := j.finish(out, err, s.now(), func(state, errStr string) {
		if state == StateDone && out != nil {
			s.persistResult(j, out.ResultJSON)
		}
		s.journalFinished(j, state, errStr)
	})
	for _, st := range stagetime.Stages() {
		if ns := env.Stages.WallNanos(st); ns > 0 {
			s.hStage[st].Observe(float64(ns) / 1e9)
		}
	}
	s.gRunning.Add(-1)
	s.running.Delete(j.id)
	s.hDuration.Observe(elapsed.Seconds())
	s.lat.observe(elapsed)
	switch state {
	case StateDone:
		s.mCompleted.Inc()
		if out != nil && out.Diff != nil {
			s.observeDiff(out.Diff)
		}
		if out != nil && out.Corpus != nil {
			s.observeCorpus(out.Corpus)
		}
	case StateCanceled:
		s.mCanceled.Inc()
	default:
		s.mFailed.Inc()
	}
	s.cfg.Logf("job %s: %s after %s", j.id, state, elapsed.Round(time.Millisecond))
	s.store.markTerminal(j)
}

// panicError wraps a panic recovered from a job runner: the recovered
// value plus the goroutine stack at the panic site, which becomes the
// job's error text so a hostile image is diagnosable after the fact.
type panicError struct {
	val   any
	stack []byte
}

func (e *panicError) Error() string {
	return fmt.Sprintf("analysis panicked: %v\n%s", e.val, e.stack)
}

// invokeRunner dispatches to the analysis or diff pipeline and confines
// any panic to the calling job: the worker goroutine survives, the job
// fails with the captured stack, and the daemon keeps serving. Without
// this, one hostile image in internal/binimg's decode path would take
// down every queued job with it.
func (s *Server) invokeRunner(ctx context.Context, j *Job, raw, raw2 []byte, env RunEnv) (out *RunOutput, err error) {
	defer func() {
		if r := recover(); r != nil {
			s.mPanics.Inc()
			out = nil
			err = &panicError{val: r, stack: debug.Stack()}
			s.cfg.Logf("job %s: panic isolated: %v", j.id, r)
		}
	}()
	switch j.kind {
	case KindDiff:
		return s.cfg.DiffRunner(ctx, raw, raw2, j.spec, env)
	case KindCorpus:
		return s.cfg.CorpusRunner(ctx, raw, j.spec, env)
	}
	return s.cfg.Runner(ctx, raw, j.spec, env)
}

// observeDiff folds one completed diff's diagnostics into the metrics.
func (s *Server) observeDiff(d *DiffStats) {
	s.diffReuse.Store(math.Float64bits(d.ReuseRatio))
	s.hDiffStage["analyze_old"].Observe(d.Timings.AnalyzeOld.Seconds())
	s.hDiffStage["scan_old"].Observe(d.Timings.ScanOld.Seconds())
	s.hDiffStage["analyze_new"].Observe(d.Timings.AnalyzeNew.Seconds())
	s.hDiffStage["scan_new"].Observe(d.Timings.ScanNew.Seconds())
	s.hDiffStage["align"].Observe(d.Timings.Align.Seconds())
}

// observeCorpus folds one completed corpus scan's diagnostics into the
// metrics.
func (s *Server) observeCorpus(c *CorpusStats) {
	s.mCorpusJobs.Inc()
	s.mCorpusBinaries.Add(uint64(c.Binaries))
	s.mCorpusCross.Add(uint64(c.CrossAlerts))
	s.hCorpusRounds.Observe(float64(c.Rounds))
}

// janitor periodically sweeps expired results so memory is reclaimed even
// when the API is idle.
func (s *Server) janitor() {
	defer s.janitorWG.Done()
	period := s.cfg.StoreTTL / 4
	if period <= 0 || period > 30*time.Second {
		period = 30 * time.Second
	}
	t := time.NewTicker(period)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			s.store.sweep()
		case <-s.stop:
			return
		}
	}
}

// Shutdown drains the server: intake stops immediately (submissions get
// 503, /healthz degrades), jobs still queued are canceled, and in-flight
// jobs may finish until ctx expires — then their contexts are canceled and
// Shutdown waits for the workers to acknowledge. It returns nil on a clean
// drain and ctx.Err() when the deadline forced cancellation. Shutdown is
// idempotent; concurrent calls both wait.
func (s *Server) Shutdown(ctx context.Context) error {
	s.qmu.Lock()
	already := s.draining
	s.draining = true
	if !already {
		// Cancel everything still queued, then close the channel so idle
		// workers exit. Workers mid-job keep running.
		for {
			select {
			case j := <-s.queue:
				if terminal, _ := j.requestCancel(s.now()); terminal {
					s.mCanceled.Inc()
					s.store.markTerminal(j)
					s.journalFinished(j, StateCanceled, "canceled")
				}
				continue
			default:
			}
			break
		}
		close(s.queue)
		close(s.stop)
	}
	s.qmu.Unlock()

	done := make(chan struct{})
	go func() {
		s.workerWG.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
		// Deadline passed: mark in-flight jobs as drained (so they report
		// canceled, not failed) and hard-cancel the shared base context.
		s.running.Range(func(_, v any) bool {
			v.(*Job).markDrained()
			return true
		})
		s.baseCancel()
		<-done
	}
	s.baseCancel()
	s.janitorWG.Wait()
	// Workers are done, so no appends remain in flight; only the first
	// Shutdown closes the journal and releases the data-dir lock
	// (concurrent calls both waited above).
	if !already && s.journal != nil {
		s.journal.Close()
	}
	if !already && s.persist != nil {
		s.persist.Close()
	}
	return err
}

// Close abruptly releases the server's persistence handles — the journal
// fd and the data-dir lock — without draining workers or canceling jobs.
// It is the in-process analogue of kill -9 for crash tests: everything
// fsynced so far stays on disk, anything in flight is abandoned, and a
// new Server can immediately open the same data dir. Appends after Close
// fail cleanly (best-effort journal writes log and count the error).
// Idempotent; safe alongside a later Shutdown, whose own closes no-op.
func (s *Server) Close() error {
	if s.journal != nil {
		s.journal.Close()
	}
	if s.persist != nil {
		return s.persist.Close()
	}
	return nil
}

// ---- handlers ----

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	s.qmu.Lock()
	draining := s.draining
	s.qmu.Unlock()
	if draining {
		writeErr(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	raw, spec, err := s.readSubmission(r)
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeErr(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("firmware exceeds the %d byte upload limit", mbe.Limit))
			return
		}
		writeErr(w, http.StatusBadRequest, err.Error())
		return
	}
	if err := spec.Normalize(); err != nil {
		writeErr(w, http.StatusBadRequest, err.Error())
		return
	}
	sum := sha256.Sum256(raw)
	seq := s.seq.Add(1)
	j := &Job{
		id:        fmt.Sprintf("j%06d", seq),
		seq:       seq,
		sha:       hex.EncodeToString(sum[:]),
		size:      len(raw),
		spec:      spec,
		state:     StateQueued,
		raw:       raw,
		submitted: s.now(),
	}
	if s.persist != nil {
		j.diskKey = jobKey(j.kind, spec, modelcache.Hash(sum))
		if payload := s.diskLookup(j.diskKey); payload != nil {
			s.completeFromDisk(w, j, payload, j.sha, "")
			return
		}
	}
	s.accept(w, j, raw, nil)
}

// handleSubmitDiff accepts an evolution-diff job: two firmware versions,
// analyzed incrementally and reported as alert/ITS churn. It shares the
// queue, store and backpressure of plain jobs.
func (s *Server) handleSubmitDiff(w http.ResponseWriter, r *http.Request) {
	s.qmu.Lock()
	draining := s.draining
	s.qmu.Unlock()
	if draining {
		writeErr(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	oldRaw, newRaw, spec, err := s.readDiffSubmission(r)
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeErr(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("firmware exceeds the %d byte upload limit", mbe.Limit))
			return
		}
		writeErr(w, http.StatusBadRequest, err.Error())
		return
	}
	if err := spec.Normalize(); err != nil {
		writeErr(w, http.StatusBadRequest, err.Error())
		return
	}
	// The pair identity hashes both sides separately so ("ab","c") and
	// ("a","bc") cannot collide.
	oldSum := sha256.Sum256(oldRaw)
	newSum := sha256.Sum256(newRaw)
	pair := sha256.Sum256(append(oldSum[:], newSum[:]...))
	seq := s.seq.Add(1)
	j := &Job{
		id:        fmt.Sprintf("j%06d", seq),
		seq:       seq,
		sha:       hex.EncodeToString(pair[:]),
		size:      len(oldRaw) + len(newRaw),
		kind:      KindDiff,
		spec:      spec,
		state:     StateQueued,
		raw:       oldRaw,
		raw2:      newRaw,
		submitted: s.now(),
	}
	if s.persist != nil {
		j.diskKey = jobKey(j.kind, spec, modelcache.Hash(oldSum), modelcache.Hash(newSum))
		if payload := s.diskLookup(j.diskKey); payload != nil {
			s.completeFromDisk(w, j, payload,
				hex.EncodeToString(oldSum[:]), hex.EncodeToString(newSum[:]))
			return
		}
	}
	s.accept(w, j, oldRaw, newRaw)
}

// handleSubmitCorpus accepts a cross-binary corpus job: a packed firmware
// tree (fits.PackCorpus bytes), scanned as one system by the channel-taint
// fixpoint. It shares the queue, store, backpressure and durability of
// plain jobs.
func (s *Server) handleSubmitCorpus(w http.ResponseWriter, r *http.Request) {
	s.qmu.Lock()
	draining := s.draining
	s.qmu.Unlock()
	if draining {
		writeErr(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	raw, spec, err := s.readCorpusSubmission(r)
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeErr(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("corpus exceeds the %d byte upload limit", mbe.Limit))
			return
		}
		writeErr(w, http.StatusBadRequest, err.Error())
		return
	}
	if err := spec.Normalize(); err != nil {
		writeErr(w, http.StatusBadRequest, err.Error())
		return
	}
	sum := sha256.Sum256(raw)
	seq := s.seq.Add(1)
	j := &Job{
		id:        fmt.Sprintf("j%06d", seq),
		seq:       seq,
		sha:       hex.EncodeToString(sum[:]),
		size:      len(raw),
		kind:      KindCorpus,
		spec:      spec,
		state:     StateQueued,
		raw:       raw,
		submitted: s.now(),
	}
	if s.persist != nil {
		j.diskKey = jobKey(j.kind, spec, modelcache.Hash(sum))
		if payload := s.diskLookup(j.diskKey); payload != nil {
			s.completeFromDisk(w, j, payload, j.sha, "")
			return
		}
	}
	s.accept(w, j, raw, nil)
}

// readCorpusSubmission decodes the packed corpus bytes and options from
// either a JSON envelope or a raw octet-stream body.
func (s *Server) readCorpusSubmission(r *http.Request) ([]byte, optbuild.Spec, error) {
	var spec optbuild.Spec
	body := http.MaxBytesReader(nil, r.Body, s.cfg.MaxUploadBytes)
	defer body.Close()
	if ct := r.Header.Get("Content-Type"); strings.HasPrefix(ct, "application/json") {
		var req CorpusSubmitRequest
		dec := json.NewDecoder(body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			return nil, spec, fmt.Errorf("invalid corpus request: %w", err)
		}
		spec = req.Options
		switch {
		case len(req.Corpus) > 0 && req.Path != "":
			return nil, spec, errors.New(`set exactly one of "corpus" and "path"`)
		case len(req.Corpus) > 0:
			return req.Corpus, spec, nil
		case req.Path != "":
			raw, err := os.ReadFile(req.Path)
			if err != nil {
				return nil, spec, fmt.Errorf("reading corpus path: %v", err)
			}
			if int64(len(raw)) > s.cfg.MaxUploadBytes {
				return nil, spec, fmt.Errorf("corpus at %s exceeds the %d byte limit", req.Path, s.cfg.MaxUploadBytes)
			}
			return raw, spec, nil
		default:
			return nil, spec, errors.New(`set one of "corpus" (base64 packed bytes) and "path"`)
		}
	}
	raw, err := io.ReadAll(body)
	if err != nil {
		return nil, spec, err
	}
	if len(raw) == 0 {
		return nil, spec, errors.New("empty corpus body")
	}
	return raw, spec, nil
}

// accept stores, enqueues and journals a prepared job, writing the 202
// (or the backpressure refusal) to w. The backpressure path touches no
// disk — a loaded server refuses cheaply — and the 202 is written only
// after the accepted record is durable, so a crash at any point either
// loses a job the client was never promised or keeps one it was.
func (s *Server) accept(w http.ResponseWriter, j *Job, raw, raw2 []byte) {
	s.store.add(j)
	if err := s.enqueue(j); err != nil {
		s.store.remove(j.id)
		if err == errDraining {
			writeErr(w, http.StatusServiceUnavailable, "server is draining")
			return
		}
		s.mRejected.Inc()
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
		writeErr(w, http.StatusTooManyRequests,
			fmt.Sprintf("job queue is full (depth %d); retry later", s.cfg.QueueDepth))
		return
	}
	if err := s.journalAccept(j, raw, raw2); err != nil {
		// The job may already be in a worker; cancel it instead of
		// acknowledging a submission the journal cannot protect. Replay
		// drops the orphaned started/finished records it may still write.
		s.mPersistErrors.Inc()
		if terminal, _ := j.requestCancel(s.now()); terminal {
			s.mCanceled.Inc()
			s.store.markTerminal(j)
		}
		s.cfg.Logf("job %s: refused, journal append failed: %v", j.id, err)
		writeErr(w, http.StatusInternalServerError,
			fmt.Sprintf("cannot persist job acceptance: %v", err))
		return
	}
	s.mAccepted.Inc()
	s.cfg.Logf("job %s: queued (%d bytes)", j.id, j.size)
	w.Header().Set("Location", "/v1/jobs/"+j.id)
	writeJSON(w, http.StatusAccepted, SubmitResponse{
		ID: j.id, Location: "/v1/jobs/" + j.id, State: StateQueued,
	})
}

// completeFromDisk finishes a submission whose result already exists in
// the on-disk store: the job is born terminal, its result is the stored
// bytes, and no worker runs. The journal still records it so the job ID
// survives a further restart.
func (s *Server) completeFromDisk(w http.ResponseWriter, j *Job, payload []byte, sha, sha2 string) {
	now := s.now()
	j.mu.Lock()
	j.state = StateDone
	j.result = payload
	j.raw = nil
	j.raw2 = nil
	j.finished = now
	j.mu.Unlock()
	key := j.diskKey
	j.loadResult = func() []byte { return s.diskLookup(key) }
	s.store.add(j)
	s.store.markTerminal(j)
	s.mDiskHits.Inc()
	s.journalDone(j, sha, sha2)
	s.cfg.Logf("job %s: served from disk store (%d bytes, sha %s)", j.id, j.size, j.sha[:12])
	w.Header().Set("Location", "/v1/jobs/"+j.id)
	writeJSON(w, http.StatusAccepted, SubmitResponse{
		ID: j.id, Location: "/v1/jobs/" + j.id, State: StateDone,
	})
}

// readSubmission decodes the firmware bytes and options from either a JSON
// envelope or a raw octet-stream body.
func (s *Server) readSubmission(r *http.Request) ([]byte, optbuild.Spec, error) {
	var spec optbuild.Spec
	body := http.MaxBytesReader(nil, r.Body, s.cfg.MaxUploadBytes)
	defer body.Close()
	if ct := r.Header.Get("Content-Type"); strings.HasPrefix(ct, "application/json") {
		var req SubmitRequest
		dec := json.NewDecoder(body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			return nil, spec, fmt.Errorf("invalid job request: %w", err)
		}
		spec = req.Options
		switch {
		case len(req.Firmware) > 0 && req.Path != "":
			return nil, spec, errors.New(`set exactly one of "firmware" and "path"`)
		case len(req.Firmware) > 0:
			return req.Firmware, spec, nil
		case req.Path != "":
			raw, err := os.ReadFile(req.Path)
			if err != nil {
				return nil, spec, fmt.Errorf("reading firmware path: %v", err)
			}
			if int64(len(raw)) > s.cfg.MaxUploadBytes {
				return nil, spec, fmt.Errorf("firmware at %s exceeds the %d byte limit", req.Path, s.cfg.MaxUploadBytes)
			}
			return raw, spec, nil
		default:
			return nil, spec, errors.New(`set one of "firmware" (base64 bytes) and "path"`)
		}
	}
	raw, err := io.ReadAll(body)
	if err != nil {
		return nil, spec, err
	}
	if len(raw) == 0 {
		return nil, spec, errors.New("empty firmware body")
	}
	return raw, spec, nil
}

// readDiffSubmission decodes the two firmware versions and options of a
// diff request. Unlike plain submissions there is no raw-body shorthand:
// the envelope is the only way to name two images.
func (s *Server) readDiffSubmission(r *http.Request) (oldRaw, newRaw []byte, spec optbuild.Spec, err error) {
	body := http.MaxBytesReader(nil, r.Body, s.cfg.MaxUploadBytes)
	defer body.Close()
	var req DiffSubmitRequest
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return nil, nil, spec, fmt.Errorf("invalid diff request: %w", err)
	}
	spec = req.Options
	if oldRaw, err = s.sideBytes(req.OldFirmware, req.OldPath, "old"); err != nil {
		return nil, nil, spec, err
	}
	if newRaw, err = s.sideBytes(req.NewFirmware, req.NewPath, "new"); err != nil {
		return nil, nil, spec, err
	}
	return oldRaw, newRaw, spec, nil
}

// sideBytes resolves one side of a diff request to firmware bytes.
func (s *Server) sideBytes(fw []byte, path, side string) ([]byte, error) {
	switch {
	case len(fw) > 0 && path != "":
		return nil, fmt.Errorf("set exactly one of %q and %q", side+"_firmware", side+"_path")
	case len(fw) > 0:
		return fw, nil
	case path != "":
		raw, err := os.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("reading %s firmware path: %v", side, err)
		}
		if int64(len(raw)) > s.cfg.MaxUploadBytes {
			return nil, fmt.Errorf("firmware at %s exceeds the %d byte limit", path, s.cfg.MaxUploadBytes)
		}
		return raw, nil
	}
	return nil, fmt.Errorf("set one of %q (base64 bytes) and %q", side+"_firmware", side+"_path")
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	jobs := s.store.list()
	// ?sha= narrows the listing to jobs of one submission identity (the
	// image hash, or the pair hash for diffs); clients use it to recover
	// a job they submitted but whose 202 a network failure ate.
	sha := r.URL.Query().Get("sha")
	resp := ListResponse{Jobs: make([]JobStatus, 0, len(jobs))}
	for _, j := range jobs {
		if sha != "" && j.sha != sha {
			continue
		}
		resp.Jobs = append(resp.Jobs, j.Snapshot(false))
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	j, ok := s.store.get(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, "no such job (it may have expired)")
		return
	}
	writeJSON(w, http.StatusOK, j.Snapshot(true))
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.store.get(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, "no such job (it may have expired)")
		return
	}
	b := j.resultBytes()
	if b == nil {
		st := j.Snapshot(false)
		switch {
		case st.State == StateFailed && st.Reason == ReasonCorrupt:
			// The submitted image itself is malformed: a permanent failure
			// of the input, not a transient one of the job.
			writeErr(w, http.StatusUnprocessableEntity, "firmware image is corrupt: "+st.Error)
		case st.State == StateDone:
			// Recovered job whose on-disk result vanished or failed its
			// checksum after the journal said done.
			writeErr(w, http.StatusInternalServerError,
				"result unavailable: the on-disk copy is missing or corrupt; resubmit to recompute")
		default:
			writeErr(w, http.StatusConflict, fmt.Sprintf("job is %s, not done", st.State))
		}
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(b)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.store.get(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, "no such job (it may have expired)")
		return
	}
	terminalNow, changed := j.requestCancel(s.now())
	if terminalNow {
		s.mCanceled.Inc()
		s.store.markTerminal(j)
		s.journalFinished(j, StateCanceled, "canceled")
	}
	if !changed && !TerminalState(j.currentState()) {
		writeErr(w, http.StatusConflict, "job cannot be canceled")
		return
	}
	s.cfg.Logf("job %s: cancel requested", j.id)
	writeJSON(w, http.StatusOK, j.Snapshot(false))
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.qmu.Lock()
	draining := s.draining
	s.qmu.Unlock()
	code := http.StatusOK
	status := "ok"
	if draining {
		code = http.StatusServiceUnavailable
		status = "draining"
	}
	writeJSON(w, code, HealthResponse{Status: status, Draining: draining})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var buf bytes.Buffer
	s.reg.WriteText(&buf)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	w.Write(buf.Bytes())
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	b, err := json.Marshal(v)
	if err != nil {
		http.Error(w, "encoding response: "+err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(b)
	w.Write([]byte("\n"))
}

func writeErr(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, ErrorResponse{Error: msg})
}
