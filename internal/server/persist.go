package server

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"fits/internal/diskstore"
	"fits/internal/modelcache"
	"fits/internal/optbuild"
)

// persist.go glues the server to its durability layer (internal/diskstore):
// computing the on-disk identity of a submission, journaling job
// transitions before they are acknowledged, and replaying the journal at
// boot so no acknowledged job is ever lost to a crash.
//
// The crash contract, in journal terms:
//
//	accepted, no started   → the job never ran; re-enqueue it verbatim
//	                         (firmware bytes come back from the blob store)
//	started, no finished   → the job was mid-run at the crash; report it
//	                         interrupted (terminal, retryable)
//	finished               → recreate the terminal record; a done job's
//	                         result is served from the disk store on demand
//
// Every disk entry is checksummed; anything corrupt is quarantined by the
// diskstore layer and the job it belonged to degrades to a miss or a
// clean failure — never to wrong bytes.

// jobKey computes the content address of a submission in the on-disk
// result store. It reuses the model cache's identity scheme — SHA-256 of
// every input plus the analysis-config epoch — with the normalized option
// spec as the config string, so identical bytes under identical options
// map to one entry across restarts, and any pipeline-semantics bump
// (modelcache.ConfigVersion) invalidates the lot.
func jobKey(kind string, spec optbuild.Spec, sums ...modelcache.Hash) string {
	specJSON, err := json.Marshal(spec)
	if err != nil {
		// Spec is a plain struct; marshal cannot fail. Keep a defensive
		// fallback that still yields a usable (if conservative) key.
		specJSON = []byte("unmarshalable")
	}
	// Kind-prefix the key so a packed corpus and a plain image with equal
	// bytes and options never share a disk entry.
	k := "job"
	if kind != "" {
		k = kind
	}
	return modelcache.Key(k, string(specJSON), sums...)
}

// journalAccept appends the job's accepted record (and its firmware
// blobs) to the durability layer. It must succeed before the 202 is
// written: an acknowledged job that is not journaled would be lost by a
// crash, which is the one outcome this subsystem exists to prevent.
func (s *Server) journalAccept(j *Job, raw, raw2 []byte) error {
	if s.journal == nil {
		return nil
	}
	blobSHA, err := s.persist.PutBlob(raw)
	if err != nil {
		return fmt.Errorf("persisting firmware blob: %w", err)
	}
	var blobSHA2 string
	if raw2 != nil {
		if blobSHA2, err = s.persist.PutBlob(raw2); err != nil {
			return fmt.Errorf("persisting firmware blob: %w", err)
		}
	}
	specJSON, err := json.Marshal(j.spec)
	if err != nil {
		return err
	}
	return s.journal.Append(diskstore.Record{
		Op:   diskstore.OpAccepted,
		ID:   j.id,
		Seq:  j.seq,
		Kind: j.kind,
		SHA:  blobSHA,
		SHA2: blobSHA2,
		Size: j.size,
		Spec: specJSON,
		Key:  j.diskKey,
	})
}

// journalStarted marks the job as picked up by a worker. Best-effort: if
// the append fails the job still runs; a crash would then replay it as
// queued (re-run) instead of interrupted, which loses no information.
func (s *Server) journalStarted(j *Job) {
	if s.journal == nil {
		return
	}
	if err := s.journal.Append(diskstore.Record{Op: diskstore.OpStarted, ID: j.id}); err != nil {
		s.mPersistErrors.Inc()
		s.cfg.Logf("job %s: journal started append failed: %v", j.id, err)
	}
}

// journalFinished records the terminal outcome. Best-effort: on failure
// the next boot replays the job as interrupted rather than terminal,
// which is still never-lost, merely pessimistic.
func (s *Server) journalFinished(j *Job, state, errStr string) {
	if s.journal == nil {
		return
	}
	if err := s.journal.Append(diskstore.Record{
		Op: diskstore.OpFinished, ID: j.id, State: state, Error: errStr,
	}); err != nil {
		s.mPersistErrors.Inc()
		s.cfg.Logf("job %s: journal finished append failed: %v", j.id, err)
	}
}

// journalDone records a disk-hit job — born terminal, never run — so its
// ID survives a restart: an accepted record (without blobs, since replay
// never re-runs a finished job) followed by the done record. Best-effort.
func (s *Server) journalDone(j *Job, sha, sha2 string) {
	if s.journal == nil {
		return
	}
	specJSON, err := json.Marshal(j.spec)
	if err != nil {
		return
	}
	for _, rec := range []diskstore.Record{
		{Op: diskstore.OpAccepted, ID: j.id, Seq: j.seq, Kind: j.kind,
			SHA: sha, SHA2: sha2, Size: j.size, Spec: specJSON, Key: j.diskKey},
		{Op: diskstore.OpFinished, ID: j.id, State: StateDone},
	} {
		if err := s.journal.Append(rec); err != nil {
			s.mPersistErrors.Inc()
			s.cfg.Logf("job %s: journal append failed: %v", j.id, err)
			return
		}
	}
}

// persistResult writes a completed job's result JSON into the disk store
// under its content address. Best-effort: a failure costs future disk
// hits, not correctness.
func (s *Server) persistResult(j *Job, resultJSON []byte) {
	if s.persist == nil || j.diskKey == "" {
		return
	}
	if err := s.persist.Put(j.diskKey, resultJSON); err != nil {
		s.mPersistErrors.Inc()
		s.cfg.Logf("job %s: persisting result failed: %v", j.id, err)
	}
}

// diskLookup serves a submission from the on-disk result store when the
// same bytes under the same options completed before (this run or any
// earlier one). A corrupt entry has been quarantined by Get and reads as
// a miss.
func (s *Server) diskLookup(key string) []byte {
	if s.persist == nil {
		return nil
	}
	payload, err := s.persist.Get(key)
	if err != nil {
		s.cfg.Logf("disk store: %v", err)
		return nil
	}
	return payload
}

// replayState aggregates one job's journal records.
type replayState struct {
	acc     diskstore.Record
	started bool
	fin     *diskstore.Record
}

// replayJournal reconstructs jobs from the surviving records, registers
// them in the in-memory store, and returns the jobs to re-enqueue plus
// the compacted journal contents. Aggregation is genuinely
// order-independent per job: accept() enqueues before it journals, so a
// fast worker can append started (even finished) ahead of the handler's
// accepted record — a first pass indexes the accepted records, a second
// applies the transitions. A started or finished record whose job was
// never accepted (the handler's append failed and the job was refused)
// is dropped.
func (s *Server) replayJournal(recs []diskstore.Record) (requeue []*Job, compact []diskstore.Record) {
	byID := map[string]*replayState{}
	var order []string
	var maxSeq uint64
	for _, rec := range recs {
		if rec.Op != diskstore.OpAccepted {
			continue
		}
		if _, ok := byID[rec.ID]; !ok {
			byID[rec.ID] = &replayState{acc: rec}
			order = append(order, rec.ID)
		}
		if rec.Seq > maxSeq {
			maxSeq = rec.Seq
		}
	}
	for _, rec := range recs {
		switch rec.Op {
		case diskstore.OpStarted:
			if st, ok := byID[rec.ID]; ok {
				st.started = true
			}
		case diskstore.OpFinished:
			if st, ok := byID[rec.ID]; ok {
				fin := rec
				st.fin = &fin
			}
		}
	}
	s.seq.Store(maxSeq)

	for _, id := range order {
		st := byID[id]
		j := s.recoverJob(st)
		s.store.add(j)
		switch j.currentState() {
		case StateQueued:
			requeue = append(requeue, j)
			compact = append(compact, st.acc)
		default:
			s.store.markTerminal(j)
			state, errStr := j.currentState(), j.snapshotError()
			compact = append(compact, st.acc, diskstore.Record{
				Op: diskstore.OpFinished, ID: j.id, State: state, Error: errStr,
			})
		}
	}
	return requeue, compact
}

// recoverJob rebuilds one job from its aggregated journal records.
func (s *Server) recoverJob(st *replayState) *Job {
	acc := st.acc
	var spec optbuild.Spec
	if len(acc.Spec) > 0 {
		json.Unmarshal(acc.Spec, &spec)
	}
	j := &Job{
		id:        acc.ID,
		seq:       acc.Seq,
		sha:       acc.SHA,
		size:      acc.Size,
		kind:      acc.Kind,
		spec:      spec,
		diskKey:   acc.Key,
		submitted: s.now(),
	}
	if acc.Kind == KindDiff {
		j.sha = pairSHA(acc.SHA, acc.SHA2)
	}
	// The job is unpublished, but take its (fresh, uncontended) lock so
	// the guarded-field invariant holds by construction.
	j.mu.Lock()
	defer j.mu.Unlock()
	switch {
	case st.fin != nil:
		j.state = st.fin.State
		if !TerminalState(j.state) {
			// A finished record always carries a terminal state; tolerate
			// hand-edited logs by degrading to interrupted.
			j.state = StateInterrupted
		}
		j.err = st.fin.Error
		j.finished = j.submitted
		if j.state == StateDone {
			key := acc.Key
			j.loadResult = func() []byte { return s.diskLookup(key) }
		}
	case st.started:
		j.state = StateInterrupted
		j.err = "interrupted: daemon restarted while the job was running; resubmit to retry"
		j.finished = j.submitted
		s.mInterrupted.Inc()
	default:
		// Accepted, never started: bring the firmware bytes back from the
		// blob store and requeue. The blob was fsynced before the accepted
		// record, so a miss here means on-disk corruption — fail cleanly.
		raw, raw2, err := s.recoverBlobs(acc)
		if err != nil {
			j.state = StateFailed
			j.err = fmt.Sprintf("firmware bytes unrecoverable after restart: %v", err)
			j.finished = j.submitted
			break
		}
		j.state = StateQueued
		j.raw = raw
		j.raw2 = raw2
	}
	return j
}

// recoverBlobs loads a replayed job's firmware bytes from the blob store.
func (s *Server) recoverBlobs(acc diskstore.Record) (raw, raw2 []byte, err error) {
	raw, err = s.persist.GetBlob(acc.SHA)
	if err != nil {
		return nil, nil, err
	}
	if raw == nil {
		return nil, nil, fmt.Errorf("blob %s missing", acc.SHA)
	}
	if acc.SHA2 != "" {
		raw2, err = s.persist.GetBlob(acc.SHA2)
		if err != nil {
			return nil, nil, err
		}
		if raw2 == nil {
			return nil, nil, fmt.Errorf("blob %s missing", acc.SHA2)
		}
	}
	return raw, raw2, nil
}

// pairSHA recomputes a diff job's pair identity from its two blob hashes,
// matching handleSubmitDiff's construction.
func pairSHA(sha, sha2 string) string {
	b1, err1 := hex.DecodeString(sha)
	b2, err2 := hex.DecodeString(sha2)
	if err1 != nil || err2 != nil {
		return sha
	}
	pair := sha256.Sum256(append(b1, b2...))
	return hex.EncodeToString(pair[:])
}

// snapshotError reads the job's error string under its lock.
func (j *Job) snapshotError() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}
