// End-to-end tests of the POST /v1/corpora surface: the corpus job
// lifecycle over httptest through the typed client, byte-identical results
// on resubmission matching a direct fits.XScan, per-job progress lines, the
// fitsd_corpus_* metrics, and the 4xx surface of the envelope.
package server_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"fits"
	"fits/client"
	"fits/internal/optbuild"
	"fits/internal/server"
	"fits/internal/synth"
)

// samplePackedCorpus memoizes one packed multi-binary corpus plus its
// directly computed cross-mode report JSON, the bytes the server must
// reproduce.
var samplePackedCorpus = sync.OnceValue(func() (out struct {
	Packed []byte
	Direct []byte
}) {
	x, err := synth.GenerateXCorpus(1)
	if err != nil {
		panic(err)
	}
	files := make([]fits.CorpusFile, len(x.Files))
	for i, f := range x.Files {
		files[i] = fits.CorpusFile{Path: f.Path, Data: f.Data}
	}
	out.Packed = fits.PackCorpus(files)
	rep, err := fits.XScan(files, fits.XScanOptions{StringFilter: true})
	if err != nil {
		panic(err)
	}
	if out.Direct, err = json.Marshal(rep); err != nil {
		panic(err)
	}
	return out
})

// TestCorpusJobLifecycle drives the real corpus pipeline end to end twice:
// a cross-binary report the first time, byte-identical result JSON on
// resubmission, and the corpus metrics visible on /metrics.
func TestCorpusJobLifecycle(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline; skipped in -short")
	}
	cache := fits.NewCache(0, 0)
	_, c := newTestService(t, server.Config{Workers: 2, Cache: cache})
	ctx := context.Background()
	sample := samplePackedCorpus()

	sub, err := c.SubmitCorpus(ctx, sample.Packed, optbuild.Spec{})
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.Wait(ctx, sub.ID, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != server.StateDone {
		t.Fatalf("corpus job ended %s: %s", st.State, st.Error)
	}
	if st.Kind != server.KindCorpus {
		t.Errorf("job kind = %q, want %q", st.Kind, server.KindCorpus)
	}
	res1, err := c.Result(ctx, sub.ID)
	if err != nil {
		t.Fatal(err)
	}
	var rep fits.CorpusReport
	if err := json.Unmarshal(res1, &rep); err != nil {
		t.Fatalf("corpus result not valid JSON: %v", err)
	}
	if len(rep.Binaries) == 0 || rep.CrossHit == 0 {
		t.Fatalf("empty corpus result: binaries=%d cross=%d", len(rep.Binaries), rep.CrossHit)
	}
	// The service result is the library result, byte for byte.
	if !bytes.Equal(res1, sample.Direct) {
		t.Errorf("service result differs from direct XScan:\nservice %s\ndirect  %s", res1, sample.Direct)
	}

	sub2, err := c.SubmitCorpus(ctx, sample.Packed, optbuild.Spec{})
	if err != nil {
		t.Fatal(err)
	}
	st2, err := c.Wait(ctx, sub2.ID, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if st2.State != server.StateDone {
		t.Fatalf("second corpus job ended %s: %s", st2.State, st2.Error)
	}
	if st2.Progress != "" {
		t.Errorf("terminal job still reports progress %q", st2.Progress)
	}
	res2, err := c.Result(ctx, sub2.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res1, res2) {
		t.Errorf("corpus results diverged:\nfirst  %s\nsecond %s", res1, res2)
	}

	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"fitsd_corpus_jobs_total 2",
		"fitsd_corpus_binaries_total 10",
		"fitsd_corpus_cross_alerts_total 8",
		"fitsd_corpus_rounds_count 2",
		"fitsd_jobs_completed_total 2",
	} {
		if !strings.Contains(m, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestCorpusModeOption verifies the xmode option reaches the pipeline: a
// CTS-seeded corpus job reports no cross-binary alerts, and an invalid
// mode is rejected with 400 at submission time.
func TestCorpusModeOption(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline; skipped in -short")
	}
	_, c := newTestService(t, server.Config{Workers: 1})
	ctx := context.Background()
	sample := samplePackedCorpus()

	sub, err := c.SubmitCorpus(ctx, sample.Packed, optbuild.Spec{XMode: "cts"})
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.Wait(ctx, sub.ID, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != server.StateDone {
		t.Fatalf("cts corpus job ended %s: %s", st.State, st.Error)
	}
	res, err := c.Result(ctx, sub.ID)
	if err != nil {
		t.Fatal(err)
	}
	var rep fits.CorpusReport
	if err := json.Unmarshal(res, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Mode != "cts" || rep.CrossHit != 0 || rep.Rounds != 1 {
		t.Errorf("cts report: mode=%s cross=%d rounds=%d, want cts/0/1", rep.Mode, rep.CrossHit, rep.Rounds)
	}

	var apiErr *client.APIError
	if _, err := c.SubmitCorpus(ctx, sample.Packed, optbuild.Spec{XMode: "quantum"}); !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusBadRequest {
		t.Errorf("bad xmode: %v", err)
	}
}

// TestCorpusProgressStream verifies the runner's progress lines surface in
// the running job's status and that corpus jobs share the queue with plain
// jobs.
func TestCorpusProgressStream(t *testing.T) {
	r := newStubRunner()
	progressed := make(chan struct{})
	corpusRunner := func(ctx context.Context, raw []byte, spec optbuild.Spec, env server.RunEnv) (*server.RunOutput, error) {
		env.Progress("round 1: scanning")
		close(progressed)
		return r.run(ctx, raw, spec, env)
	}
	_, c := newTestService(t, server.Config{Workers: 1, Runner: r.run, CorpusRunner: corpusRunner})
	ctx := context.Background()

	sub, err := c.SubmitCorpus(ctx, []byte("packed-corpus"), optbuild.Spec{})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-progressed:
	case <-time.After(5 * time.Second):
		t.Fatal("corpus runner never ran")
	}
	r.waitStarted(t)
	st, err := c.Job(ctx, sub.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != server.StateRunning || st.Progress != "round 1: scanning" {
		t.Errorf("running status = %s progress %q, want running with the progress line", st.State, st.Progress)
	}
	// A plain job behind it drains from the same queue.
	if _, err := c.Submit(ctx, []byte("fw"), optbuild.Spec{}); err != nil {
		t.Fatal(err)
	}
	close(r.release)
	st, err = c.Wait(ctx, sub.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != server.StateDone {
		t.Fatalf("corpus job ended %s: %s", st.State, st.Error)
	}
	if st.Progress != "" {
		t.Errorf("done job still reports progress %q", st.Progress)
	}
}

// TestCorpusBadRequests covers the 4xx surface of the corpus envelope.
func TestCorpusBadRequests(t *testing.T) {
	r := newStubRunner()
	close(r.release)
	_, c := newTestService(t, server.Config{Workers: 1, CorpusRunner: func(ctx context.Context, raw []byte, spec optbuild.Spec, env server.RunEnv) (*server.RunOutput, error) {
		return r.run(ctx, raw, spec, env)
	}})
	ctx := context.Background()
	var apiErr *client.APIError

	// No corpus at all.
	if _, err := c.SubmitCorpus(ctx, nil, optbuild.Spec{}); !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusBadRequest {
		t.Errorf("missing corpus: %v", err)
	}
	// Unreadable server-side path.
	if _, err := c.SubmitCorpusPath(ctx, "/nonexistent/corpus.fw", optbuild.Spec{}); !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusBadRequest {
		t.Errorf("unreadable path: %v", err)
	}
}
