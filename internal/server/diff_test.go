// End-to-end tests of the POST /v1/diffs surface: the diff job lifecycle
// over httptest through the typed client, byte-identical results on
// resubmission with model-cache reuse, cancel mid-diff, the diff metrics,
// and the 4xx surface of the two-sided submission envelope.
package server_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"fits"
	"fits/client"
	"fits/internal/optbuild"
	"fits/internal/server"
	"fits/internal/synth"
)

// samplePair memoizes one synthetic version chain step (old, new) for the
// diff pipeline tests.
var samplePair = sync.OnceValue(func() [2][]byte {
	c, err := synth.GenerateChain(synth.ChainDataset()[0])
	if err != nil {
		panic(err)
	}
	return [2][]byte{c.Versions[0].Packed, c.Versions[1].Packed}
})

// runDiff adapts the stub runner to the diff signature: it signals with
// both sides' bytes and blocks until released or canceled.
func (r *stubRunner) runDiff(ctx context.Context, oldRaw, newRaw []byte, spec optbuild.Spec, env server.RunEnv) (*server.RunOutput, error) {
	r.started <- string(oldRaw) + "|" + string(newRaw)
	select {
	case <-r.release:
		return &server.RunOutput{ResultJSON: []byte(`{"stub":"diff"}`)}, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// TestDiffJobLifecycle drives the real evolution pipeline end to end twice:
// a valid churn report the first time, byte-identical result JSON on
// resubmission with the analysis served from the shared model cache, and
// the diff metrics visible on /metrics.
func TestDiffJobLifecycle(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline; skipped in -short")
	}
	cache := fits.NewCache(0, 0)
	_, c := newTestService(t, server.Config{Workers: 2, Cache: cache})
	ctx := context.Background()
	pair := samplePair()

	sub, err := c.SubmitDiff(ctx, pair[0], pair[1], optbuild.Spec{})
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.Wait(ctx, sub.ID, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != server.StateDone {
		t.Fatalf("diff job ended %s: %s", st.State, st.Error)
	}
	if st.Kind != server.KindDiff {
		t.Errorf("job kind = %q, want %q", st.Kind, server.KindDiff)
	}
	res1, err := c.Result(ctx, sub.ID)
	if err != nil {
		t.Fatal(err)
	}
	var dr server.DiffJobResult
	if err := json.Unmarshal(res1, &dr); err != nil {
		t.Fatalf("diff result not valid JSON: %v", err)
	}
	if len(dr.Targets) == 0 || dr.TotalFuncs == 0 {
		t.Fatalf("empty diff result: %+v", dr)
	}
	if dr.ReuseRatio < 0.9 {
		t.Errorf("reuse ratio %.2f (%d/%d), want >= 0.9", dr.ReuseRatio, dr.ReusedFuncs, dr.TotalFuncs)
	}
	if dr.AlertsPersisted == 0 {
		t.Error("diff reports no persisted alerts")
	}

	// Resubmit the identical pair: byte-identical result, models served
	// from the shared cache.
	sub2, err := c.SubmitDiff(ctx, pair[0], pair[1], optbuild.Spec{})
	if err != nil {
		t.Fatal(err)
	}
	st2, err := c.Wait(ctx, sub2.ID, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if st2.State != server.StateDone {
		t.Fatalf("second diff ended %s: %s", st2.State, st2.Error)
	}
	res2, err := c.Result(ctx, sub2.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res1, res2) {
		t.Errorf("diff results diverged:\nfirst  %s\nsecond %s", res1, res2)
	}
	if st2.Cache == nil || st2.Cache.Reused == 0 {
		t.Errorf("second diff reused no models: %+v", st2.Cache)
	}

	// The reuse-ratio gauge and per-stage histograms are visible.
	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"fits_diff_reuse_ratio 0.9",
		"fitsd_diff_analyze_old_seconds_count 2",
		"fitsd_diff_analyze_new_seconds_count 2",
		"fitsd_diff_scan_new_seconds_count 2",
		"fitsd_diff_align_seconds_count 2",
		"fitsd_jobs_completed_total 2",
	} {
		if !strings.Contains(m, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestDiffCancelRunning cancels a diff mid-flight via context propagation.
func TestDiffCancelRunning(t *testing.T) {
	r := newStubRunner()
	_, c := newTestService(t, server.Config{Workers: 1, DiffRunner: r.runDiff})
	ctx := context.Background()

	sub, err := c.SubmitDiff(ctx, []byte("fw-old"), []byte("fw-new"), optbuild.Spec{})
	if err != nil {
		t.Fatal(err)
	}
	r.waitStarted(t)
	if _, err := c.Cancel(ctx, sub.ID); err != nil {
		t.Fatal(err)
	}
	st, err := c.Wait(ctx, sub.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != server.StateCanceled {
		t.Errorf("state = %s, want canceled", st.State)
	}
	m, _ := c.Metrics(ctx)
	if !strings.Contains(m, "fitsd_jobs_canceled_total 1") {
		t.Error("canceled counter not incremented")
	}
}

// TestDiffSharesQueueWithJobs verifies diff and analysis jobs drain the
// same bounded queue: a diff holding the one worker backpressures a plain
// submission.
func TestDiffSharesQueueWithJobs(t *testing.T) {
	r := newStubRunner()
	_, c := newTestService(t, server.Config{
		Workers: 1, QueueDepth: 1, Runner: r.run, DiffRunner: r.runDiff,
	})
	ctx := context.Background()

	if _, err := c.SubmitDiff(ctx, []byte("a"), []byte("b"), optbuild.Spec{}); err != nil {
		t.Fatal(err)
	}
	r.waitStarted(t)
	if _, err := c.Submit(ctx, []byte("fw"), optbuild.Spec{}); err != nil {
		t.Fatal(err) // fills the shared queue
	}
	if _, err := c.SubmitDiff(ctx, []byte("c"), []byte("d"), optbuild.Spec{}); !errors.Is(err, client.ErrQueueFull) {
		t.Fatalf("overflow diff submit: err = %v, want ErrQueueFull", err)
	}
	close(r.release)
}

// TestDiffBadRequests covers the 4xx surface of the two-sided envelope.
func TestDiffBadRequests(t *testing.T) {
	r := newStubRunner()
	close(r.release)
	srv := mustServer(t, server.Config{Workers: 1, DiffRunner: r.runDiff})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()
	c := client.New(ts.URL, ts.Client())
	ctx := context.Background()
	var apiErr *client.APIError

	// A side given both ways.
	body, _ := json.Marshal(server.DiffSubmitRequest{
		OldFirmware: []byte("fw"), OldPath: "/tmp/fw", NewFirmware: []byte("fw2"),
	})
	resp, err := ts.Client().Post(ts.URL+"/v1/diffs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("both firmware and path: status %d, want 400", resp.StatusCode)
	}
	// A side not given at all.
	if _, err := c.SubmitDiff(ctx, []byte("fw"), nil, optbuild.Spec{}); !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusBadRequest {
		t.Errorf("missing new side: %v", err)
	}
	// Unknown engine.
	if _, err := c.SubmitDiff(ctx, []byte("a"), []byte("b"), optbuild.Spec{Engine: "quantum"}); !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusBadRequest {
		t.Errorf("bad engine: %v", err)
	}
	// Unreadable server-side path.
	if _, err := c.SubmitDiffPaths(ctx, "/nonexistent/old.fw", "/nonexistent/new.fw", optbuild.Spec{}); !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusBadRequest {
		t.Errorf("unreadable path: %v", err)
	}
}
