package server

import (
	"fmt"
	"testing"
	"time"
)

func testJob(seq uint64, state string) *Job {
	return &Job{id: fmt.Sprintf("j%06d", seq), seq: seq, state: state}
}

func TestStoreLRUCapEviction(t *testing.T) {
	now := time.Unix(1000, 0)
	st := newStore(2, 0, func() time.Time { return now })
	for i := uint64(1); i <= 3; i++ {
		j := testJob(i, StateDone)
		st.add(j)
		st.markTerminal(j)
	}
	if _, ok := st.get("j000001"); ok {
		t.Error("oldest terminal job should have been LRU-evicted at cap 2")
	}
	for _, id := range []string{"j000002", "j000003"} {
		if _, ok := st.get(id); !ok {
			t.Errorf("job %s unexpectedly evicted", id)
		}
	}
	if _, terminal, evicted := st.counts(); terminal != 2 || evicted != 1 {
		t.Errorf("counts: terminal=%d evicted=%d", terminal, evicted)
	}
}

func TestStoreLRUTouchOnGet(t *testing.T) {
	now := time.Unix(1000, 0)
	st := newStore(2, 0, func() time.Time { return now })
	a, b := testJob(1, StateDone), testJob(2, StateDone)
	st.add(a)
	st.markTerminal(a)
	st.add(b)
	st.markTerminal(b)
	st.get("j000001") // a becomes most recent
	c := testJob(3, StateDone)
	st.add(c)
	st.markTerminal(c) // should evict b, not a
	if _, ok := st.get("j000001"); !ok {
		t.Error("recently touched job was evicted")
	}
	if _, ok := st.get("j000002"); ok {
		t.Error("least recently used job survived eviction")
	}
}

func TestStoreTTLExpiry(t *testing.T) {
	now := time.Unix(1000, 0)
	st := newStore(10, time.Minute, func() time.Time { return now })
	j := testJob(1, StateDone)
	st.add(j)
	st.markTerminal(j)
	if _, ok := st.get("j000001"); !ok {
		t.Fatal("fresh job missing")
	}
	now = now.Add(59 * time.Second)
	if _, ok := st.get("j000001"); !ok {
		t.Fatal("job expired before its TTL")
	}
	now = now.Add(2 * time.Second)
	if _, ok := st.get("j000001"); ok {
		t.Fatal("job survived past its TTL")
	}
	if n, _, _ := st.counts(); n != 0 {
		t.Errorf("expired job still retained, %d jobs", n)
	}
}

func TestStoreSweepDropsExpired(t *testing.T) {
	now := time.Unix(1000, 0)
	st := newStore(10, time.Minute, func() time.Time { return now })
	for i := uint64(1); i <= 3; i++ {
		j := testJob(i, StateDone)
		st.add(j)
		st.markTerminal(j)
	}
	now = now.Add(2 * time.Minute)
	st.sweep()
	if n, _, ev := st.counts(); n != 0 || ev != 3 {
		t.Errorf("after sweep: jobs=%d evicted=%d", n, ev)
	}
}

func TestStoreNeverEvictsPinnedJobs(t *testing.T) {
	now := time.Unix(1000, 0)
	st := newStore(1, time.Minute, func() time.Time { return now })
	running := testJob(1, StateRunning)
	queued := testJob(2, StateQueued)
	st.add(running)
	st.add(queued)
	// Flood with terminal jobs far past the cap and the TTL.
	for i := uint64(3); i < 10; i++ {
		j := testJob(i, StateDone)
		st.add(j)
		st.markTerminal(j)
	}
	now = now.Add(time.Hour)
	st.sweep()
	if _, ok := st.get("j000001"); !ok {
		t.Error("running job was evicted")
	}
	if _, ok := st.get("j000002"); !ok {
		t.Error("queued job was evicted")
	}
}

func TestStoreListOrder(t *testing.T) {
	st := newStore(10, 0, time.Now)
	for _, seq := range []uint64{3, 1, 2} {
		st.add(testJob(seq, StateQueued))
	}
	jobs := st.list()
	if len(jobs) != 3 || jobs[0].seq != 1 || jobs[1].seq != 2 || jobs[2].seq != 3 {
		t.Errorf("list order: %v", jobs)
	}
}
