package server

import (
	"math"
	"sync"
	"time"
)

// retryafter.go derives the Retry-After value sent with 429 backpressure
// refusals from what the server actually knows: how many jobs are ahead
// in the queue and how long recent jobs took. A constant "1" (the old
// behavior) teaches every client to hammer a loaded server once a second;
// a derived value spreads the retries across the window in which a slot
// is actually likely to open.

// latencyWindow is how many recent job durations feed the estimate. Small
// enough to track load shifts, large enough to ride out one outlier.
const latencyWindow = 32

// latencyDefault seeds the estimate before any job has finished.
const latencyDefault = time.Second

// retryAfterMax caps the advertised wait; past this, clients should be
// polling anyway rather than trusting a stale estimate.
const retryAfterMax = 60

// latencyTracker keeps a ring of the most recent job run durations.
type latencyTracker struct {
	mu   sync.Mutex
	ring [latencyWindow]time.Duration // guarded by mu
	n    int                          // filled slots; guarded by mu
	idx  int                          // next write position; guarded by mu
}

// observe records one finished job's run duration.
func (lt *latencyTracker) observe(d time.Duration) {
	if d < 0 {
		return
	}
	lt.mu.Lock()
	defer lt.mu.Unlock()
	lt.ring[lt.idx] = d
	lt.idx = (lt.idx + 1) % latencyWindow
	if lt.n < latencyWindow {
		lt.n++
	}
}

// avg returns the mean of the recorded durations, or 0 when none exist.
func (lt *latencyTracker) avg() time.Duration {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	if lt.n == 0 {
		return 0
	}
	var sum time.Duration
	for i := 0; i < lt.n; i++ {
		sum += lt.ring[i]
	}
	return sum / time.Duration(lt.n)
}

// deriveRetryAfter estimates, in whole seconds, when a queue slot should
// open: the queued jobs drain at roughly workers per avg-latency, so a
// newcomer waits about (queued/workers + 1) job durations. Clamped to
// [1, retryAfterMax]; avg <= 0 falls back to latencyDefault.
func deriveRetryAfter(queued, workers int, avg time.Duration) int {
	if workers < 1 {
		workers = 1
	}
	if avg <= 0 {
		avg = latencyDefault
	}
	wait := time.Duration(queued/workers+1) * avg
	secs := int(math.Ceil(wait.Seconds()))
	if secs < 1 {
		secs = 1
	}
	if secs > retryAfterMax {
		secs = retryAfterMax
	}
	return secs
}

// retryAfterSeconds snapshots the live queue depth and latency estimate.
func (s *Server) retryAfterSeconds() int {
	return deriveRetryAfter(len(s.queue), s.cfg.Workers, s.lat.avg())
}
