package pool

// Tests for the Scheduler contract: one bounded budget shared across every
// ForEach of a batch, non-blocking slot acquisition (so nested calls cannot
// deadlock), and error semantics matching the package-level ForEach.

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

func TestSchedulerVisitsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 3, 8} {
		s := NewScheduler(workers)
		const n = 57
		var visits [n]atomic.Int32
		err := s.ForEach(context.Background(), n, func(i int) error {
			visits[i].Add(1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range visits {
			if got := visits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, got)
			}
		}
	}
}

func TestSchedulerReturnsLowestIndexError(t *testing.T) {
	errA := errors.New("a")
	errB := errors.New("b")
	for _, workers := range []int{1, 4} {
		s := NewScheduler(workers)
		err := s.ForEach(context.Background(), 64, func(i int) error {
			switch i {
			case 3:
				return errA
			case 5:
				return errB
			}
			return nil
		})
		if err != errA {
			t.Errorf("workers=%d: err = %v, want %v", workers, err, errA)
		}
	}
}

// TestSchedulerNestedForEachNoDeadlock is the property the scheduler exists
// for: a corpus fan-out whose items each fan out again over the same budget
// must complete even when the budget (1 worker) admits no helpers at all —
// the caller always runs items inline.
func TestSchedulerNestedForEachNoDeadlock(t *testing.T) {
	for _, workers := range []int{1, 2, 4} {
		s := NewScheduler(workers)
		var inner atomic.Int32
		err := s.ForEach(context.Background(), 8, func(i int) error {
			return s.ForEach(context.Background(), 8, func(j int) error {
				inner.Add(1)
				return nil
			})
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got := inner.Load(); got != 64 {
			t.Errorf("workers=%d: inner ran %d times, want 64", workers, got)
		}
	}
}

// TestSchedulerBoundsConcurrencyAcrossCalls: two concurrent top-level
// ForEach calls plus borrowed helpers must never exceed callers + (workers-1)
// busy goroutines — the slot budget is global to the scheduler, not per call.
func TestSchedulerBoundsConcurrencyAcrossCalls(t *testing.T) {
	const workers = 4
	const callers = 2
	s := NewScheduler(workers)
	var cur, peak atomic.Int32
	var wg sync.WaitGroup
	gate := make(chan struct{})
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-gate
			_ = s.ForEach(context.Background(), 64, func(i int) error {
				v := cur.Add(1)
				for {
					p := peak.Load()
					if v <= p || peak.CompareAndSwap(p, v) {
						break
					}
				}
				for k := 0; k < 1000; k++ {
					_ = k // brief busy window so runs overlap
				}
				cur.Add(-1)
				return nil
			})
		}()
	}
	close(gate)
	wg.Wait()
	// Each caller runs inline (2) and at most workers-1 slots are lent out
	// between them (3): 5 is the hard ceiling.
	if max := int32(callers + workers - 1); peak.Load() > max {
		t.Errorf("peak concurrency %d, want <= %d", peak.Load(), max)
	}
}

func TestSchedulerPreCancelledContext(t *testing.T) {
	s := NewScheduler(4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	called := false
	if err := s.ForEach(ctx, 8, func(int) error { called = true; return nil }); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if called {
		t.Error("fn ran under a pre-cancelled context")
	}
}

// TestSchedulerSlotsReturned: after ForEach completes, all borrowed slots
// are back, so a later call can borrow the full budget again.
func TestSchedulerSlotsReturned(t *testing.T) {
	s := NewScheduler(4)
	for round := 0; round < 3; round++ {
		if err := s.ForEach(context.Background(), 32, func(int) error { return nil }); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(s.slots); got != 0 {
		t.Errorf("%d slots still held after ForEach returned", got)
	}
}
