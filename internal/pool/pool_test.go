package pool

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestForEachVisitsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 3, 8, 100} {
		const n = 57
		var visits [n]atomic.Int32
		err := ForEach(context.Background(), workers, n, func(i int) error {
			visits[i].Add(1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range visits {
			if got := visits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, got)
			}
		}
	}
}

func TestForEachZeroItems(t *testing.T) {
	if err := ForEach(context.Background(), 4, 0, func(int) error {
		t.Fatal("fn called for n=0")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestForEachReturnsLowestIndexError(t *testing.T) {
	errA := errors.New("a")
	errB := errors.New("b")
	for _, workers := range []int{1, 4} {
		err := ForEach(context.Background(), workers, 64, func(i int) error {
			switch i {
			case 3:
				return errA
			case 5:
				// With workers=4 this item may run concurrently with
				// item 3; the lower index must still win.
				return errB
			}
			return nil
		})
		if err != errA {
			t.Errorf("workers=%d: err = %v, want %v", workers, err, errA)
		}
	}
}

func TestForEachErrorStopsDispatch(t *testing.T) {
	boom := errors.New("boom")
	var after atomic.Int32
	_ = ForEach(context.Background(), 2, 1000, func(i int) error {
		if i == 0 {
			return boom
		}
		if i > 100 {
			after.Add(1)
		}
		time.Sleep(time.Millisecond)
		return nil
	})
	// Dispatch halts quickly: the bulk of the tail must never start.
	if got := after.Load(); got > 10 {
		t.Errorf("%d items ran after the failure", got)
	}
}

func TestForEachPreCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	called := false
	err := ForEach(ctx, 4, 10, func(int) error {
		called = true
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	if called {
		t.Error("fn ran under a cancelled context")
	}
}

func TestForEachCancellationMidFlight(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int32
	err := ForEach(ctx, 2, 1000, func(i int) error {
		if ran.Add(1) == 4 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	if got := ran.Load(); got > 100 {
		t.Errorf("%d items ran after cancellation", got)
	}
}

func TestForEachNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 20; i++ {
		_ = ForEach(context.Background(), 8, 50, func(int) error { return nil })
	}
	// ForEach waits for its workers, so the count settles back.
	var after int
	for i := 0; i < 50; i++ {
		after = runtime.NumGoroutine()
		if after <= before+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines: before=%d after=%d", before, after)
}

func TestForEachBoundsConcurrency(t *testing.T) {
	const workers = 3
	var cur, max atomic.Int32
	err := ForEach(context.Background(), workers, 100, func(int) error {
		c := cur.Add(1)
		for {
			m := max.Load()
			if c <= m || max.CompareAndSwap(m, c) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		cur.Add(-1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := max.Load(); got > workers {
		t.Errorf("observed %d concurrent items, cap is %d", got, workers)
	}
}
