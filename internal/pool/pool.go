// Package pool provides the bounded fan-out primitive used by the parallel
// analysis pipeline: run n index-addressed work items on up to `workers`
// goroutines with context cancellation checked at item granularity.
//
// The pool is deliberately order-agnostic: callers that need deterministic
// output pre-size a result slice and have item i write only slot i, so the
// assembled result is identical at every worker count. Cancellation and
// errors stop the dispatch of further items; items already in flight run to
// completion before ForEach returns, so no goroutine outlives the call.
package pool

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// ForEach invokes fn(i) for every index in [0, n), running at most `workers`
// items concurrently (workers <= 0 means runtime.GOMAXPROCS(0)).
//
// The context is checked before every item: once ctx is done, no further
// items start and ForEach returns ctx.Err(). If an fn call returns an error,
// dispatch stops and the error of the lowest failing index is returned —
// a deterministic choice regardless of scheduling. ForEach always waits for
// in-flight items before returning.
func ForEach(ctx context.Context, workers, n int, fn func(i int) error) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		next     atomic.Int64 // next index to dispatch
		stop     atomic.Bool  // set on first error to halt dispatch
		mu       sync.Mutex
		firstIdx = n
		firstErr error
	)
	next.Store(-1)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if stop.Load() || ctx.Err() != nil {
					return
				}
				i := int(next.Add(1))
				if i >= n {
					return
				}
				if err := fn(i); err != nil {
					mu.Lock()
					if i < firstIdx {
						firstIdx, firstErr = i, err
					}
					mu.Unlock()
					stop.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	mu.Lock()
	err := firstErr
	mu.Unlock()
	if err != nil {
		return err
	}
	return ctx.Err()
}
