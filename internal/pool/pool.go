// Package pool provides the bounded fan-out primitive used by the parallel
// analysis pipeline: run n index-addressed work items on up to `workers`
// goroutines with context cancellation checked at item granularity.
//
// The pool is deliberately order-agnostic: callers that need deterministic
// output pre-size a result slice and have item i write only slot i, so the
// assembled result is identical at every worker count. Cancellation and
// errors stop the dispatch of further items; items already in flight run to
// completion before ForEach returns, so no goroutine outlives the call.
package pool

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// A Scheduler shares one bounded worker budget across every fan-out of a
// batch: corpus-level scans hand the same Scheduler to each image's
// pipeline, so model building for image A and vector extraction for image B
// draw from one pool instead of each Analyze call sizing its own.
//
// ForEach on a Scheduler is caller-runs-inline: the calling goroutine always
// executes items itself and extra goroutines are added only when a budget
// slot is free. Acquisition never blocks, so arbitrarily nested ForEach
// calls (targets inside images inside a corpus) cannot deadlock — the worst
// case is the caller running its items serially. The global goroutine count
// stays at most `workers`: each top-level caller plus the borrowed slots.
type Scheduler struct {
	slots chan struct{}
}

// NewScheduler returns a scheduler bounding concurrent work across all its
// ForEach calls to `workers` goroutines (<= 0 means runtime.GOMAXPROCS(0)).
func NewScheduler(workers int) *Scheduler {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	// The caller of every ForEach is itself a worker, so only workers-1
	// helper slots are ever lent out.
	return &Scheduler{slots: make(chan struct{}, workers-1)}
}

// ForEach invokes fn(i) for every index in [0, n) on the scheduler's shared
// budget. Error and cancellation semantics match the package-level ForEach:
// the lowest failing index's error wins and in-flight items drain before
// return. Callers needing deterministic output write slot i from item i, so
// results are identical at every worker count and borrow pattern.
func (s *Scheduler) ForEach(ctx context.Context, n int, fn func(i int) error) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if n <= 0 {
		return nil
	}
	var (
		next     atomic.Int64
		stop     atomic.Bool
		mu       sync.Mutex
		firstIdx = n
		firstErr error
	)
	next.Store(-1)
	run := func() {
		for {
			if stop.Load() || ctx.Err() != nil {
				return
			}
			i := int(next.Add(1))
			if i >= n {
				return
			}
			if err := fn(i); err != nil {
				mu.Lock()
				if i < firstIdx {
					firstIdx, firstErr = i, err
				}
				mu.Unlock()
				stop.Store(true)
				return
			}
		}
	}
	// Borrow helper slots without blocking; the caller below is always one
	// worker, so zero borrowed slots still makes progress.
	var wg sync.WaitGroup
	for borrowed := 0; borrowed < n-1; borrowed++ {
		select {
		case s.slots <- struct{}{}:
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() { <-s.slots }()
				run()
			}()
			continue
		default:
		}
		break
	}
	run()
	wg.Wait()
	mu.Lock()
	err := firstErr
	mu.Unlock()
	if err != nil {
		return err
	}
	return ctx.Err()
}

// ForEach invokes fn(i) for every index in [0, n), running at most `workers`
// items concurrently (workers <= 0 means runtime.GOMAXPROCS(0)).
//
// The context is checked before every item: once ctx is done, no further
// items start and ForEach returns ctx.Err(). If an fn call returns an error,
// dispatch stops and the error of the lowest failing index is returned —
// a deterministic choice regardless of scheduling. ForEach always waits for
// in-flight items before returning.
func ForEach(ctx context.Context, workers, n int, fn func(i int) error) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		next     atomic.Int64 // next index to dispatch
		stop     atomic.Bool  // set on first error to halt dispatch
		mu       sync.Mutex
		firstIdx = n
		firstErr error
	)
	next.Store(-1)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if stop.Load() || ctx.Err() != nil {
					return
				}
				i := int(next.Add(1))
				if i >= n {
					return
				}
				if err := fn(i); err != nil {
					mu.Lock()
					if i < firstIdx {
						firstIdx, firstErr = i, err
					}
					mu.Unlock()
					stop.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	mu.Lock()
	err := firstErr
	mu.Unlock()
	if err != nil {
		return err
	}
	return ctx.Err()
}
