package taint

import (
	"fmt"
	"testing"

	"fits/internal/loader"
	"fits/internal/synth"
)

func TestDebugSTA(t *testing.T) {
	for _, idx := range []int{0, 17, 30, 42} {
		spec := synth.Dataset()[idx]
		s, err := synth.Generate(spec)
		if err != nil {
			t.Fatal(err)
		}
		res, err := loader.Load(s.Packed, loader.Options{})
		if err != nil {
			t.Fatalf("%v: %v", spec.Product, err)
		}
		target := res.Targets[0]
		man := s.Manifest
		classify := func(alerts []Alert) (tp, fp int) {
			for _, a := range alerts {
				if h, ok := man.HandlerBySink(target.Bin.Name, a.Func); ok && h.Category.Vulnerable() {
					tp++
				} else {
					fp++
				}
			}
			return
		}
		// CTS only
		ectx := New(target.Bin, target.Model, Options{UseCTS: true})
		ctsAlerts := ectx.Run()
		tp, fp := classify(ctsAlerts)
		// ITS mode
		var its []uint32
		for _, it := range man.ITS {
			its = append(its, it.Entry)
		}
		eits := New(target.Bin, target.Model, Options{UseCTS: true, ITS: its, StringFilter: true})
		itsAlerts := eits.Run()
		tp2, fp2 := classify(itsAlerts)
		nfiltered := len(eits.AllAlerts()) - len(itsAlerts)
		fmt.Printf("%-8s %-10s bugs=%2d | CTS alerts=%2d tp=%2d fp=%2d | +ITS alerts=%2d tp=%2d fp=%2d filtered=%d\n",
			man.Vendor, man.Product, man.TrueBugs(), len(ctsAlerts), tp, fp, len(itsAlerts), tp2, fp2, nfiltered)
		for _, a := range itsAlerts {
			h, ok := man.HandlerBySink(target.Bin.Name, a.Func)
			if !ok {
				fmt.Printf("    UNKNOWN alert func=%#x sink=%s from=%v key=%q\n", a.Func, a.Sink, a.From, a.Key)
			} else if !h.Category.Vulnerable() {
				fmt.Printf("    FP %-20s sink=%s from=%v key=%q\n", h.Category, a.Sink, a.From, a.Key)
			}
		}
	}
}
