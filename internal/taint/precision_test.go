package taint

import (
	"reflect"
	"testing"

	"fits/internal/minic"
)

// aliasedProgram launders received data through a global pointer table at a
// symbolic index: value-level propagation alone loses the store, the alias
// pass reconnects it to the load feeding the sink.
func aliasedProgram() *minic.Program {
	return &minic.Program{
		Name: "t",
		Globals: []*minic.Global{
			{Name: "g_tab", Size: 32}, {Name: "g_v", Size: 16}, {Name: "store", Size: 64},
		},
		Funcs: []*minic.Func{
			{Name: "fetch", NParams: 2, Body: []minic.Stmt{
				minic.Return{E: minic.Add(minic.Var("p1"), minic.Int(4))},
			}},
			{Name: "handler", Body: []minic.Stmt{
				minic.Let{Name: "v", E: minic.Call{Name: "fetch", Args: []minic.Expr{
					minic.Str("username"), minic.GlobalRef("store")}}},
				minic.Let{Name: "idx", E: minic.Call{Name: "strlen", Args: []minic.Expr{minic.GlobalRef("g_v")}}},
				minic.StoreStmt{Size: 4, Addr: minic.Add(minic.GlobalRef("g_tab"), minic.Var("idx")), Val: minic.Var("v")},
				minic.Let{Name: "p", E: minic.LoadW(minic.Add(minic.GlobalRef("g_tab"), minic.Var("idx")))},
				minic.ExprStmt{E: minic.Call{Name: "system", Args: []minic.Expr{minic.Var("p")}}},
				minic.Return{E: minic.Int(0)},
			}},
		},
	}
}

// infeasibleProgram guards its sink behind v < 4 && v >= 100.
func infeasibleProgram() *minic.Program {
	return &minic.Program{
		Name:    "t",
		Globals: []*minic.Global{{Name: "g_v", Size: 16}, {Name: "store", Size: 64}},
		Funcs: []*minic.Func{
			{Name: "fetch", NParams: 2, Body: []minic.Stmt{
				minic.Return{E: minic.Add(minic.Var("p1"), minic.Int(4))},
			}},
			{Name: "handler", Body: []minic.Stmt{
				minic.Let{Name: "v", E: minic.Call{Name: "fetch", Args: []minic.Expr{
					minic.Str("username"), minic.GlobalRef("store")}}},
				minic.Let{Name: "n", E: minic.Call{Name: "strlen", Args: []minic.Expr{minic.GlobalRef("g_v")}}},
				minic.If{Cond: minic.Cond{Op: minic.Lt, L: minic.Var("n"), R: minic.Int(4)}, Then: []minic.Stmt{
					minic.If{Cond: minic.Cond{Op: minic.Ge, L: minic.Var("n"), R: minic.Int(100)}, Then: []minic.Stmt{
						minic.ExprStmt{E: minic.Call{Name: "system", Args: []minic.Expr{minic.Var("v")}}},
					}},
				}},
				minic.Return{E: minic.Int(0)},
			}},
		},
	}
}

// TestAliasPassConnectsLaunderedFlow: the alias pass must recover the flow
// value-level propagation loses through a symbolic-index store, and the
// -no-alias escape hatch must lose it again.
func TestAliasPassConnectsLaunderedFlow(t *testing.T) {
	bin, m := buildBin(t, aliasedProgram())
	its := []uint32{entryOf(t, bin, "fetch")}
	with := New(bin, m, Options{UseCTS: true, ITS: its}).Run()
	found := false
	for _, a := range with {
		if a.Sink == "system" {
			found = true
		}
	}
	if !found {
		t.Fatalf("alias pass did not connect the laundered flow: %+v", with)
	}
	without := New(bin, m, Options{UseCTS: true, ITS: its, NoAlias: true}).Run()
	for _, a := range without {
		if a.Sink == "system" {
			t.Fatalf("-no-alias still alerts on the laundered flow: %+v", without)
		}
	}
}

// TestPathcheckRefutesInfeasibleAlert: the contradictory guard must refute
// the alert (excluded from Run, retained in AllAlerts with the constraint),
// and -no-pathcheck must restore it.
func TestPathcheckRefutesInfeasibleAlert(t *testing.T) {
	bin, m := buildBin(t, infeasibleProgram())
	its := []uint32{entryOf(t, bin, "fetch")}
	e := New(bin, m, Options{UseCTS: true, ITS: its})
	for _, a := range e.Run() {
		if a.Sink == "system" {
			t.Fatalf("infeasible alert survived pathcheck: %+v", a)
		}
	}
	refuted := false
	for _, a := range e.AllAlerts() {
		if a.Sink == "system" && a.Refuted != "" {
			refuted = true
		}
	}
	if !refuted {
		t.Fatal("refuted alert not retained in AllAlerts with its constraint")
	}
	plain := New(bin, m, Options{UseCTS: true, ITS: its, NoPathcheck: true}).Run()
	found := false
	for _, a := range plain {
		if a.Sink == "system" {
			found = true
		}
	}
	if !found {
		t.Fatalf("-no-pathcheck did not restore the alert: %+v", plain)
	}
}

// TestPrecisionCacheByteIdentical: sharing one PrecisionCache across
// engines is purely a cost saving — alert slices must match the uncached
// runs exactly, on repeated scans too.
func TestPrecisionCacheByteIdentical(t *testing.T) {
	for _, prog := range []*minic.Program{aliasedProgram(), infeasibleProgram()} {
		bin, m := buildBin(t, prog)
		its := []uint32{entryOf(t, bin, "fetch")}
		want := New(bin, m, Options{UseCTS: true, ITS: its}).Run()
		cache := new(PrecisionCache)
		for i := 0; i < 3; i++ {
			got := New(bin, m, Options{UseCTS: true, ITS: its, Precision: cache}).Run()
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s run %d with shared cache diverged:\ngot  %+v\nwant %+v", prog.Name, i, got, want)
			}
		}
	}
}
