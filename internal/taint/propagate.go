package taint

import (
	"fits/internal/cfg"
	"fits/internal/dataflow"
	"fits/internal/ir"
	"fits/internal/isa"
	"fits/internal/know"
)

// tloc is a storage location: register, stack slot (entry-SP relative) or
// global word.
type tloc struct {
	isReg  bool
	reg    isa.Reg
	isGlob bool
	addr   int32 // slot offset or global address
}

func treg(r isa.Reg) tloc  { return tloc{isReg: true, reg: r} }
func tslot(off int32) tloc { return tloc{addr: off} }
func tglob(a uint32) tloc  { return tloc{isGlob: true, addr: int32(a)} }

// tval is the abstract value: optional shape plus a taint bit.
type tval struct {
	kind  dfKind
	c     int32
	taint bool
}

type dfKind uint8

const (
	kTop dfKind = iota
	kConst
	kSPRel
)

type tstate map[tloc]tval

func (s tstate) clone() tstate {
	ns := make(tstate, len(s))
	for k, v := range s {
		ns[k] = v
	}
	return ns
}

func (s tstate) join(o tstate) bool {
	changed := false
	for k, v := range o {
		cur, ok := s[k]
		if !ok {
			s[k] = v
			changed = true
			continue
		}
		nv := cur
		if cur.kind != v.kind || cur.c != v.c {
			nv.kind, nv.c = kTop, 0
		}
		nv.taint = cur.taint || v.taint
		if nv != cur {
			s[k] = nv
			changed = true
		}
	}
	return changed
}

// seed describes how taint enters a function activation.
type seed struct {
	// retSiteAddr: the call at this address returns tainted data (0 when
	// unused).
	retSiteAddr uint32
	// paramMask taints parameters at entry (bit i = r_i).
	paramMask uint8
}

// memoKey deduplicates recursive propagation. The channel endpoint (via)
// participates so flows seeded by different cross-binary channels through
// the same callee stay distinguishable.
type memoKey struct {
	entry uint32
	s     seed
	from  SourceKind
	via   string
}

// intra runs the taint dataflow over one function and acts on the findings.
type intra struct {
	e     *Engine
	fn    *cfg.Function
	sd    seed
	from  SourceKind
	key   string
	via   string // cross-binary channel endpoint ("" intra-binary)
	depth int

	idom       map[uint32]uint32
	sanitizing map[uint32]bool // blocks with dominating range checks
	callsAt    map[uint32][]cfg.CallSite
}

// propagateValue seeds taint at the return of the call at seedAddr in fn.
func (e *Engine) propagateValue(fn *cfg.Function, seedAddr uint32, from SourceKind, key string, depth int) {
	e.propagate(fn, seed{retSiteAddr: seedAddr}, from, key, "", depth)
}

// propagateChannel seeds taint at the return of the channel getter call at
// seedAddr; via records the cross-binary endpoint for provenance.
func (e *Engine) propagateChannel(fn *cfg.Function, seedAddr uint32, key, via string) {
	e.propagate(fn, seed{retSiteAddr: seedAddr}, FromChannel, key, via, 0)
}

// propagateParams seeds taint on fn's parameters.
func (e *Engine) propagateParams(fn *cfg.Function, mask uint8, from SourceKind, key, via string, depth int) {
	e.propagate(fn, seed{paramMask: mask}, from, key, via, depth)
}

// propagateGlobals analyzes fn with no local seed; taint enters only through
// loads of tainted global words.
func (e *Engine) propagateGlobals(fn *cfg.Function) {
	e.propagate(fn, seed{}, FromITS, "", "", 0)
}

func (e *Engine) propagate(fn *cfg.Function, sd seed, from SourceKind, key, via string, depth int) {
	if depth > e.opts.MaxDepth {
		return
	}
	if e.memo == nil {
		e.memo = map[memoKey]bool{}
	}
	mk := memoKey{entry: fn.Entry, s: sd, from: from, via: via}
	if e.memo[mk] {
		return
	}
	e.memo[mk] = true

	in := &intra{e: e, fn: fn, sd: sd, from: from, key: key, via: via, depth: depth}
	in.callsAt = map[uint32][]cfg.CallSite{}
	for _, cs := range fn.Calls {
		in.callsAt[cs.Addr] = append(in.callsAt[cs.Addr], cs)
	}
	in.run()
}

func (in *intra) run() {
	fn := in.fn
	entry := tstate{}
	entry[treg(isa.SP)] = tval{kind: kSPRel}
	for i := 0; i < 4; i++ {
		if in.sd.paramMask&(1<<i) != 0 {
			entry[treg(isa.Reg(i))] = tval{kind: kTop, taint: true}
		}
	}

	states := map[uint32]tstate{fn.Entry: entry}
	work := []uint32{fn.Entry}
	inWork := map[uint32]bool{fn.Entry: true}
	for iters := 0; len(work) > 0 && iters < 4096; iters++ {
		b := work[0]
		work = work[1:]
		inWork[b] = false
		blk := fn.Blocks[b]
		if blk == nil {
			continue
		}
		st, ok := states[b]
		if !ok {
			continue
		}
		out := in.transfer(blk, st.clone(), nil)
		for _, succ := range blk.Succs {
			if _, ok := fn.Blocks[succ]; !ok {
				continue
			}
			cur, ok := states[succ]
			if !ok {
				states[succ] = out.clone()
			} else if !cur.join(out) {
				continue
			}
			if !inWork[succ] {
				work = append(work, succ)
				inWork[succ] = true
			}
		}
	}

	// Pass 2a: find sanitizing blocks (dominating range checks on taint).
	in.idom = cfg.Dominators(fn)
	in.sanitizing = map[uint32]bool{}
	for _, ba := range fn.Order {
		st, ok := states[ba]
		if !ok {
			continue
		}
		obs := &observer{}
		in.transfer(fn.Blocks[ba], st.clone(), obs)
		if obs.rangeCheck {
			in.sanitizing[ba] = true
		}
	}
	// Pass 2b: alerts and interprocedural continuation.
	for _, ba := range fn.Order {
		st, ok := states[ba]
		if !ok {
			continue
		}
		obs := &observer{act: in}
		in.transfer(fn.Blocks[ba], st.clone(), obs)
	}
}

// sanitizedAt reports whether any sanitizing block strictly dominates blk.
func (in *intra) sanitizedAt(blk uint32) bool {
	for s := range in.sanitizing {
		if s != blk && dominatesTaint(in.idom, s, blk) {
			return true
		}
	}
	return false
}

func dominatesTaint(idom map[uint32]uint32, a, b uint32) bool {
	for {
		if a == b {
			return true
		}
		next, ok := idom[b]
		if !ok || next == b {
			return false
		}
		b = next
	}
}

// observer collects facts during a recording transfer.
type observer struct {
	rangeCheck bool
	act        *intra // non-nil: raise alerts and recurse
}

// transfer interprets one block. obs selects recording behaviour; nil means
// plain dataflow.
func (in *intra) transfer(blk *cfg.BasicBlock, st tstate, obs *observer) tstate {
	temps := map[ir.Temp]tval{}
	texpr := map[ir.Temp]ir.Expr{}
	var curInstr uint32 // instruction whose statements are being evaluated
	get := func(l tloc) tval {
		if v, ok := st[l]; ok {
			return v
		}
		return tval{}
	}
	var eval func(e ir.Expr) tval
	eval = func(e ir.Expr) tval {
		switch e := e.(type) {
		case *ir.Const:
			return tval{kind: kConst, c: int32(e.V)}
		case *ir.RdTmp:
			return temps[e.T]
		case *ir.Get:
			return get(treg(e.R))
		case *ir.Binop:
			l, r := eval(e.L), eval(e.R)
			t := l.taint || r.taint
			switch {
			case l.kind == kConst && r.kind == kConst:
				return tval{kind: kConst, c: foldTaint(e.Op, l.c, r.c), taint: t}
			case e.Op == ir.Add && l.kind == kSPRel && r.kind == kConst:
				return tval{kind: kSPRel, c: l.c + r.c, taint: t}
			case e.Op == ir.Add && l.kind == kConst && r.kind == kSPRel:
				return tval{kind: kSPRel, c: r.c + l.c, taint: t}
			case e.Op == ir.Sub && l.kind == kSPRel && r.kind == kConst:
				return tval{kind: kSPRel, c: l.c - r.c, taint: t}
			}
			return tval{kind: kTop, taint: t}
		case *ir.Load:
			a := eval(e.Addr)
			switch a.kind {
			case kSPRel:
				v := get(tslot(a.c))
				v.taint = v.taint || a.taint
				return v
			case kConst:
				v := get(tglob(uint32(a.c)))
				taint := v.taint || a.taint || in.e.taintedGlobals[uint32(a.c)]
				return tval{kind: kTop, taint: taint}
			}
			// Unresolved address: the points-to pass may know which
			// abstract location this load reads.
			t := a.taint
			if !t && in.e.aliasLoadTainted(in.fn, curInstr) {
				t = true
			}
			return tval{kind: kTop, taint: t}
		}
		return tval{}
	}

	for _, irb := range blk.IR {
		curInstr = irb.Addr
		for _, s := range irb.Stmts {
			switch s := s.(type) {
			case *ir.WrTmp:
				temps[s.T] = eval(s.E)
				texpr[s.T] = s.E
			case *ir.Put:
				st[treg(s.R)] = eval(s.E)
			case *ir.Store:
				a := eval(s.Addr)
				v := eval(s.Val)
				switch a.kind {
				case kSPRel:
					st[tslot(a.c)] = v
				case kConst:
					st[tglob(uint32(a.c))] = v
					if v.taint {
						in.e.taintedGlobals[uint32(a.c)] = true
					}
				default:
					// A tainted value stored through an unresolved pointer
					// is exactly what value tracking used to drop; hand it
					// to the points-to pass.
					if v.taint {
						in.e.aliasStoreTainted(in.fn, irb.Addr)
					}
				}
			case *ir.Exit:
				if obs != nil && in.isRangeCheck(s.Cond, temps, texpr) {
					obs.rangeCheck = true
				}
			case *ir.Call:
				if obs != nil && obs.act != nil {
					in.atCall(irb.Addr, blk.Start, st, get)
				}
				// Transfer: argument taint flows into the return value.
				var argTaint bool
				for r := isa.Reg(0); r < 4; r++ {
					if get(treg(r)).taint {
						argTaint = true
					}
				}
				for r := isa.Reg(0); r < 4; r++ {
					st[treg(r)] = tval{}
				}
				st[treg(isa.R0)] = tval{kind: kTop, taint: argTaint}
				// The seed call's return is tainted by definition.
				if in.sd.retSiteAddr == irb.Addr {
					st[treg(isa.R0)] = tval{kind: kTop, taint: true}
				}
				st[treg(isa.LR)] = tval{}
			case *ir.Sys:
				st[treg(isa.R0)] = tval{}
			}
		}
	}
	return st
}

// isRangeCheck recognizes a branch comparing a tainted value against a
// nonzero constant bound with an ordering comparison.
func (in *intra) isRangeCheck(cond ir.Expr, temps map[ir.Temp]tval, texpr map[ir.Temp]ir.Expr) bool {
	rt, ok := cond.(*ir.RdTmp)
	if !ok {
		return false
	}
	bin, ok := texpr[rt.T].(*ir.Binop)
	if !ok {
		return false
	}
	if bin.Op != ir.CmpLT && bin.Op != ir.CmpGE {
		return false
	}
	evalSide := func(e ir.Expr) tval {
		if t, ok := e.(*ir.RdTmp); ok {
			return temps[t.T]
		}
		if c, ok := e.(*ir.Const); ok {
			return tval{kind: kConst, c: int32(c.V)}
		}
		return tval{}
	}
	l, r := evalSide(bin.L), evalSide(bin.R)
	lc := l.kind == kConst && l.c != 0
	rc := r.kind == kConst && r.c != 0
	return (l.taint && rc) || (r.taint && lc)
}

// atCall raises alerts at sink calls and recurses into custom callees.
func (in *intra) atCall(addr, blockStart uint32, st tstate, get func(tloc) tval) {
	for _, cs := range in.callsAt[addr] {
		if spec, ok := know.Sinks[cs.ImportName]; ok {
			for _, pi := range spec.DangerousParams {
				if pi < 4 && get(treg(isa.Reg(pi))).taint {
					if in.sanitizedAt(blockStart) {
						break
					}
					a := Alert{
						Binary: in.e.bin.Name, Site: addr, Func: in.fn.Entry,
						Sink: cs.ImportName, Kind: spec.Kind, From: in.from, Key: in.key,
						Via: in.via,
					}
					if in.e.opts.StringFilter && in.from == FromITS && SystemDataKeys[in.key] {
						a.Filtered = true
					}
					in.e.report(a)
					break
				}
			}
			continue
		}
		if spec, ok := in.e.opts.ChannelSetters[cs.ImportName]; ok {
			// A tainted value published onto a cross-binary channel: record
			// the written endpoint as a channel-write pseudo-alert. Only
			// statically resolvable keys can be joined to a getter, so
			// unresolvable ones are dropped here.
			if spec.ValParam >= 0 && spec.ValParam < 4 &&
				get(treg(isa.Reg(spec.ValParam))).taint && !in.sanitizedAt(blockStart) {
				if c, ok := dataflow.BacktrackRegister(in.fn, cs.Addr, isa.Reg(spec.KeyParam)); ok {
					if wkey, ok := dataflow.ClassifyStringConstant(in.e.bin, c); ok && wkey != "" {
						in.e.report(Alert{
							Binary: in.e.bin.Name, Site: addr, Func: in.fn.Entry,
							Sink: cs.ImportName, Kind: know.SinkChannelWrite,
							From: in.from, Key: in.key,
							Via: spec.Chan.String() + ":" + wkey,
						})
					}
				}
			}
			continue
		}
		if cs.Target == 0 || cs.ImportName != "" {
			continue
		}
		callee, ok := in.e.model.FuncAt(cs.Target)
		if !ok || callee.ImportStub {
			continue
		}
		var mask uint8
		for r := isa.Reg(0); r < 4; r++ {
			if get(treg(r)).taint {
				mask |= 1 << r
			}
		}
		if mask == 0 || in.sanitizedAt(blockStart) {
			continue
		}
		in.e.propagateParams(callee, mask, in.from, in.key, in.via, in.depth+1)
	}
}

func foldTaint(op ir.BinOp, a, b int32) int32 {
	switch op {
	case ir.Add:
		return a + b
	case ir.Sub:
		return a - b
	case ir.Mul:
		return a * b
	case ir.Div:
		if b == 0 {
			return 0
		}
		return a / b
	case ir.And:
		return a & b
	case ir.Or:
		return a | b
	case ir.Xor:
		return a ^ b
	case ir.Shl:
		return int32(uint32(a) << (uint32(b) & 31))
	case ir.Shr:
		return int32(uint32(a) >> (uint32(b) & 31))
	}
	return 0
}
