package taint

import (
	"testing"

	"fits/internal/minic"
)

// outParamProgram models a fetcher that WRITES the field into a
// caller-supplied buffer instead of returning it — the paper's "passes out
// the result via ... pointers" ITS shape.
func outParamProgram() *minic.Program {
	return &minic.Program{
		Name: "t",
		Globals: []*minic.Global{
			{Name: "store", Size: 64},
			{Name: "fieldbuf", Size: 64},
			{Name: "out", Size: 64},
		},
		Funcs: []*minic.Func{
			// fetch_into(key, store, dst): copies the field into dst.
			{Name: "fetch_into", NParams: 3, Body: []minic.Stmt{
				minic.Let{Name: "i", E: minic.Int(0)},
				minic.While{Cond: minic.Cond{Op: minic.Lt, L: minic.Var("i"), R: minic.Int(16)},
					Body: []minic.Stmt{
						minic.StoreStmt{Size: 1, Addr: minic.Add(minic.Var("p2"), minic.Var("i")),
							Val: minic.LoadB(minic.Add(minic.Var("p1"), minic.Var("i")))},
						minic.Assign{Name: "i", E: minic.Add(minic.Var("i"), minic.Int(1))},
					}},
				minic.Return{E: minic.Int(0)},
			}},
			{Name: "handler", Body: []minic.Stmt{
				minic.ExprStmt{E: minic.Call{Name: "fetch_into", Args: []minic.Expr{
					minic.Str("username"), minic.GlobalRef("store"), minic.GlobalRef("fieldbuf")}}},
				minic.ExprStmt{E: minic.Call{Name: "strcpy", Args: []minic.Expr{
					minic.GlobalRef("out"), minic.GlobalRef("fieldbuf")}}},
				minic.Return{E: minic.Int(0)},
			}},
			{Name: "main", Body: []minic.Stmt{
				minic.ExprStmt{E: minic.Call{Name: "handler"}},
				minic.Return{E: minic.Int(0)},
			}},
		},
	}
}

func TestOutParamITSStatic(t *testing.T) {
	bin, m := buildBin(t, outParamProgram())
	fetch := entryOf(t, bin, "fetch_into")

	// Return-value seeding alone misses the flow.
	none := New(bin, m, Options{ITS: []uint32{fetch}}).Run()
	for _, a := range none {
		if a.Sink == "strcpy" {
			t.Error("return-only seeding should miss the pointer-output flow")
		}
	}

	// Pointer-output seeding finds it with the key attached.
	e := New(bin, m, Options{ITSOut: map[uint32][]int{fetch: {2}}})
	alerts := e.Run()
	var hit *Alert
	for i := range alerts {
		if alerts[i].Sink == "strcpy" {
			hit = &alerts[i]
		}
	}
	if hit == nil {
		t.Fatal("pointer-output flow not reported")
	}
	if hit.From != FromITS || hit.Key != "username" {
		t.Errorf("alert = %+v", hit)
	}
}

func TestOutParamITSFilteredBySystemKey(t *testing.T) {
	p := outParamProgram()
	// Re-key the fetch to a system field.
	for _, f := range p.Funcs {
		if f.Name != "handler" {
			continue
		}
		call := f.Body[0].(minic.ExprStmt).E.(minic.Call)
		call.Args[0] = minic.Str("mac_addr")
		f.Body[0] = minic.ExprStmt{E: call}
	}
	bin, m := buildBin(t, p)
	fetch := entryOf(t, bin, "fetch_into")
	e := New(bin, m, Options{ITSOut: map[uint32][]int{fetch: {2}}, StringFilter: true})
	if alerts := e.Run(); len(alerts) != 0 {
		t.Errorf("system-key object alert not filtered: %+v", alerts)
	}
	if all := e.AllAlerts(); len(all) == 0 {
		t.Error("filtered alert should remain visible in AllAlerts")
	}
}
