package taint

import (
	"testing"

	"fits/internal/binimg"
	"fits/internal/cfg"
	"fits/internal/isa"
	"fits/internal/know"
	"fits/internal/loader"
	"fits/internal/minic"
	"fits/internal/synth"
	"fits/internal/ucse"
)

// buildBin links a program and builds its model with indirect resolution.
func buildBin(t *testing.T, p *minic.Program) (*binimg.Binary, *cfg.Model) {
	t.Helper()
	bin, err := minic.Link(p, isa.ArchARM, nil)
	if err != nil {
		t.Fatal(err)
	}
	m, err := cfg.Build(bin, cfg.Options{Resolver: ucse.Resolver()})
	if err != nil {
		t.Fatal(err)
	}
	return bin, m
}

func entryOf(t *testing.T, bin *binimg.Binary, name string) uint32 {
	t.Helper()
	for _, f := range bin.Funcs {
		if f.Name == name {
			return f.Addr
		}
	}
	t.Fatalf("function %q not found", name)
	return 0
}

// srcProgram: recv writes a global buffer; one sink consumes the buffer
// pointer (region bug) and one consumes a constant (clean).
func srcProgram() *minic.Program {
	return &minic.Program{
		Name:    "t",
		Globals: []*minic.Global{{Name: "buf", Size: 64}, {Name: "out", Size: 64}},
		Funcs: []*minic.Func{
			{Name: "main", Body: []minic.Stmt{
				minic.ExprStmt{E: minic.Call{Name: "recv", Args: []minic.Expr{
					minic.Int(0), minic.GlobalRef("buf"), minic.Int(64), minic.Int(0)}}},
				minic.ExprStmt{E: minic.Call{Name: "strcpy", Args: []minic.Expr{
					minic.GlobalRef("out"), minic.GlobalRef("buf")}}},
				minic.ExprStmt{E: minic.Call{Name: "system", Args: []minic.Expr{minic.Str("ls")}}},
				minic.Return{E: minic.Int(0)},
			}},
		},
	}
}

func TestCTSRegionAlert(t *testing.T) {
	bin, m := buildBin(t, srcProgram())
	e := New(bin, m, Options{UseCTS: true})
	alerts := e.Run()
	if len(alerts) != 1 {
		t.Fatalf("alerts = %d, want 1 (%+v)", len(alerts), alerts)
	}
	a := alerts[0]
	if a.Sink != "strcpy" || a.From != FromCTSRegion || a.Kind != know.SinkOverflow {
		t.Errorf("alert = %+v", a)
	}
}

func TestNoCTSNoAlert(t *testing.T) {
	p := srcProgram()
	// Remove the recv call: region never tainted.
	p.Funcs[0].Body = p.Funcs[0].Body[1:]
	bin, m := buildBin(t, p)
	if alerts := New(bin, m, Options{UseCTS: true}).Run(); len(alerts) != 0 {
		t.Errorf("alerts = %+v", alerts)
	}
}

func TestHeapBufferDefeatsRegionAnalysis(t *testing.T) {
	p := &minic.Program{
		Name:    "t",
		Globals: []*minic.Global{{Name: "ptr", Size: 4}, {Name: "out", Size: 64}},
		Funcs: []*minic.Func{
			{Name: "main", Body: []minic.Stmt{
				minic.StoreStmt{Size: 4, Addr: minic.GlobalRef("ptr"),
					Val: minic.Call{Name: "malloc", Args: []minic.Expr{minic.Int(64)}}},
				minic.ExprStmt{E: minic.Call{Name: "recv", Args: []minic.Expr{
					minic.Int(0), minic.LoadW(minic.GlobalRef("ptr")), minic.Int(64), minic.Int(0)}}},
				minic.ExprStmt{E: minic.Call{Name: "strcpy", Args: []minic.Expr{
					minic.GlobalRef("out"), minic.LoadW(minic.GlobalRef("ptr"))}}},
				minic.Return{E: minic.Int(0)},
			}},
		},
	}
	bin, m := buildBin(t, p)
	if alerts := New(bin, m, Options{UseCTS: true}).Run(); len(alerts) != 0 {
		t.Errorf("heap flow should be invisible to region analysis: %+v", alerts)
	}
}

// itsProgram: fetch() returns derived data; handlers use it in different
// ways: unchecked (bug), range-checked (sanitized), through a wrapper chain
// (deep bug).
func itsProgram() *minic.Program {
	return &minic.Program{
		Name:    "t",
		Globals: []*minic.Global{{Name: "store", Size: 64}, {Name: "out", Size: 64}},
		Funcs: []*minic.Func{
			{Name: "fetch", NParams: 2, Body: []minic.Stmt{
				minic.Return{E: minic.Add(minic.Var("p1"), minic.Int(4))},
			}},
			{Name: "unchecked", Body: []minic.Stmt{
				minic.Let{Name: "v", E: minic.Call{Name: "fetch", Args: []minic.Expr{
					minic.Str("username"), minic.GlobalRef("store")}}},
				minic.If{Cond: minic.Cond{Op: minic.Eq, L: minic.Var("v"), R: minic.Int(0)},
					Then: []minic.Stmt{minic.Return{E: minic.Int(0)}}},
				minic.ExprStmt{E: minic.Call{Name: "system", Args: []minic.Expr{minic.Var("v")}}},
				minic.Return{E: minic.Int(0)},
			}},
			{Name: "checked", Body: []minic.Stmt{
				minic.Let{Name: "v", E: minic.Call{Name: "fetch", Args: []minic.Expr{
					minic.Str("lang"), minic.GlobalRef("store")}}},
				minic.Let{Name: "n", E: minic.Call{Name: "strlen", Args: []minic.Expr{minic.Var("v")}}},
				minic.If{Cond: minic.Cond{Op: minic.Lt, L: minic.Var("n"), R: minic.Int(32)},
					Then: []minic.Stmt{
						minic.ExprStmt{E: minic.Call{Name: "strcpy", Args: []minic.Expr{
							minic.GlobalRef("out"), minic.Var("v")}}},
					}},
				minic.Return{E: minic.Int(0)},
			}},
			{Name: "wrap1", NParams: 1, Body: []minic.Stmt{
				minic.Return{E: minic.Call{Name: "wrap2", Args: []minic.Expr{minic.Var("p0")}}},
			}},
			{Name: "wrap2", NParams: 1, Body: []minic.Stmt{
				minic.ExprStmt{E: minic.Call{Name: "sprintf", Args: []minic.Expr{
					minic.GlobalRef("out"), minic.Str("%s"), minic.Var("p0"), minic.Int(0)}}},
				minic.Return{E: minic.Int(0)},
			}},
			{Name: "deep", Body: []minic.Stmt{
				minic.Let{Name: "v", E: minic.Call{Name: "fetch", Args: []minic.Expr{
					minic.Str("mac_addr"), minic.GlobalRef("store")}}},
				minic.ExprStmt{E: minic.Call{Name: "wrap1", Args: []minic.Expr{minic.Var("v")}}},
				minic.Return{E: minic.Int(0)},
			}},
			{Name: "main", Body: []minic.Stmt{
				minic.ExprStmt{E: minic.Call{Name: "unchecked"}},
				minic.ExprStmt{E: minic.Call{Name: "checked"}},
				minic.ExprStmt{E: minic.Call{Name: "deep"}},
				minic.Return{E: minic.Int(0)},
			}},
		},
	}
}

func TestITSValueFlow(t *testing.T) {
	bin, m := buildBin(t, itsProgram())
	fetch := entryOf(t, bin, "fetch")
	e := New(bin, m, Options{ITS: []uint32{fetch}})
	alerts := e.Run()
	bySink := map[string]Alert{}
	for _, a := range alerts {
		bySink[a.Sink] = a
	}
	if a, ok := bySink["system"]; !ok {
		t.Error("unchecked flow not reported")
	} else {
		if a.From != FromITS || a.Key != "username" {
			t.Errorf("alert = %+v", a)
		}
	}
	if _, ok := bySink["strcpy"]; ok {
		t.Error("range-checked flow reported (sanitization failed)")
	}
	if a, ok := bySink["sprintf"]; !ok {
		t.Error("deep wrapper flow not reported")
	} else if wrap2 := entryOf(t, bin, "wrap2"); a.Func != wrap2 {
		t.Errorf("deep alert func = %#x, want wrap2 %#x", a.Func, wrap2)
	}
}

func TestStringFilterDropsSystemKeys(t *testing.T) {
	bin, m := buildBin(t, itsProgram())
	fetch := entryOf(t, bin, "fetch")
	e := New(bin, m, Options{ITS: []uint32{fetch}, StringFilter: true})
	alerts := e.Run()
	for _, a := range alerts {
		if a.Key == "mac_addr" {
			t.Error("system-key alert not filtered")
		}
	}
	all := e.AllAlerts()
	if len(all) <= len(alerts) {
		t.Error("filtered alerts not retained in AllAlerts")
	}
}

func TestDepthLimitStopsPropagation(t *testing.T) {
	bin, m := buildBin(t, itsProgram())
	fetch := entryOf(t, bin, "fetch")
	e := New(bin, m, Options{ITS: []uint32{fetch}, MaxDepth: -1})
	e.opts.MaxDepth = 0 // value flows may not cross any call
	alerts := e.Run()
	for _, a := range alerts {
		if a.Sink == "sprintf" {
			t.Error("deep flow reported despite zero depth budget")
		}
	}
}

func TestTaintThroughGlobalStore(t *testing.T) {
	p := &minic.Program{
		Name:    "t",
		Globals: []*minic.Global{{Name: "slot", Size: 4}, {Name: "store", Size: 64}, {Name: "out", Size: 64}},
		Funcs: []*minic.Func{
			{Name: "fetch", NParams: 1, Body: []minic.Stmt{
				minic.Return{E: minic.Add(minic.Var("p0"), minic.Int(4))}}},
			{Name: "producer", Body: []minic.Stmt{
				minic.StoreStmt{Size: 4, Addr: minic.GlobalRef("slot"),
					Val: minic.Call{Name: "fetch", Args: []minic.Expr{minic.GlobalRef("store")}}},
				minic.Return{E: minic.Int(0)},
			}},
			{Name: "consumer", Body: []minic.Stmt{
				minic.ExprStmt{E: minic.Call{Name: "system", Args: []minic.Expr{
					minic.LoadW(minic.GlobalRef("slot"))}}},
				minic.Return{E: minic.Int(0)},
			}},
			{Name: "main", Body: []minic.Stmt{
				minic.ExprStmt{E: minic.Call{Name: "producer"}},
				minic.ExprStmt{E: minic.Call{Name: "consumer"}},
				minic.Return{E: minic.Int(0)},
			}},
		},
	}
	bin, m := buildBin(t, p)
	fetch := entryOf(t, bin, "fetch")
	alerts := New(bin, m, Options{ITS: []uint32{fetch}}).Run()
	var found bool
	for _, a := range alerts {
		if a.Sink == "system" {
			found = true
		}
	}
	if !found {
		t.Error("taint lost through global slot between functions")
	}
}

// Corpus-level invariants: STA-ITS finds every bug STA finds, and all
// engines' alerts sit at genuine sink call sites.
func TestCorpusSampleSuperset(t *testing.T) {
	for _, idx := range []int{0, 26, 42} {
		s, err := synth.Generate(synth.Dataset()[idx])
		if err != nil {
			t.Fatal(err)
		}
		res, err := loader.Load(s.Packed, loader.Options{})
		if err != nil {
			t.Fatal(err)
		}
		target := res.Targets[0]
		var its []uint32
		for _, it := range s.Manifest.ITS {
			its = append(its, it.Entry)
		}
		cts := New(target.Bin, target.Model, Options{UseCTS: true, StringFilter: true}).Run()
		both := New(target.Bin, target.Model, Options{UseCTS: true, ITS: its, StringFilter: true}).Run()
		sites := map[uint32]bool{}
		for _, a := range both {
			sites[a.Site] = true
		}
		for _, a := range cts {
			if !sites[a.Site] {
				t.Errorf("sample %d: CTS alert at %#x missing from CTS+ITS run", idx, a.Site)
			}
		}
	}
}
