package taint

import (
	"math/rand"
	"reflect"
	"testing"

	"fits/internal/know"
)

// TestSortAlertsDeterministic checks the full tie-break chain: alerts that
// collide on every leading key are still put in one well-defined order, so
// a report is byte-stable no matter what order the engine produced them in.
func TestSortAlertsDeterministic(t *testing.T) {
	want := []Alert{
		{Site: 0x100, Func: 0x80, Sink: "strcpy", Kind: know.SinkOverflow, From: FromCTSRegion},
		{Site: 0x200, Func: 0x80, Sink: "memcpy", Kind: know.SinkOverflow, From: FromITS, Key: "a"},
		{Site: 0x200, Func: 0x80, Sink: "memcpy", Kind: know.SinkOverflow, From: FromITS, Key: "b"},
		{Site: 0x200, Func: 0x80, Sink: "system", Kind: know.SinkCommand, From: FromCTSValue},
		// The cross-binary hop endpoint (Via) breaks ties after Key: alerts
		// for one site seeded through different channels keep one order.
		{Site: 0x200, Func: 0x80, Sink: "system", Kind: know.SinkCommand, From: FromChannel, Key: "wl_key"},
		{Site: 0x200, Func: 0x80, Sink: "system", Kind: know.SinkCommand, From: FromChannel, Key: "wl_key", Via: "env:wl_key"},
		{Site: 0x200, Func: 0x80, Sink: "system", Kind: know.SinkCommand, From: FromChannel, Key: "wl_key", Via: "nvram:wl_key"},
		{Site: 0x200, Func: 0x80, Sink: "system", Kind: know.SinkCommand, From: FromChannel, Key: "wl_key", Via: "nvram:wl_key", Binary: "b"},
		// The precision-pass fields break the remaining ties: non-degraded
		// before degraded, unrefuted before refuted, refuting constraints
		// in string order.
		{Site: 0x200, Func: 0x80, Sink: "system", Kind: know.SinkCommand, From: FromChannel, Key: "wl_key", Via: "nvram:wl_key", Degraded: true},
		{Site: 0x200, Func: 0x80, Sink: "system", Kind: know.SinkCommand, From: FromChannel, Key: "wl_key", Via: "nvram:wl_key", Refuted: "u1 < 4 contradicts u1 >= 100"},
		{Site: 0x200, Func: 0x80, Sink: "system", Kind: know.SinkCommand, From: FromChannel, Key: "wl_key", Via: "nvram:wl_key", Refuted: "u2 == 0 contradicts u2 != 0"},
		{Site: 0x200, Func: 0x80, Sink: "system", Kind: know.SinkCommand, From: FromChannel, Key: "wl_key", Via: "nvram:wl_key", Refuted: "u2 == 0 contradicts u2 != 0", Degraded: true},
		{Site: 0x200, Func: 0x90, Sink: "memcpy", Kind: know.SinkOverflow, From: FromCTSRegion},
		{Site: 0x200, Func: 0x90, Sink: "memcpy", Kind: know.SinkOverflow, From: FromCTSRegion, Binary: "z"},
	}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		got := make([]Alert, len(want))
		copy(got, want)
		rng.Shuffle(len(got), func(i, j int) { got[i], got[j] = got[j], got[i] })
		SortAlerts(got)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: order diverged:\ngot  %+v\nwant %+v", trial, got, want)
		}
	}
}

// TestRunOrderStable re-runs an engine over the same binary and requires
// byte-identical alert slices.
func TestRunOrderStable(t *testing.T) {
	bin, model := buildBin(t, srcProgram())
	var prev []Alert
	for i := 0; i < 3; i++ {
		e := New(bin, model, Options{UseCTS: true})
		got := e.Run()
		if i > 0 && !reflect.DeepEqual(got, prev) {
			t.Fatalf("run %d differed from run %d", i, i-1)
		}
		prev = got
	}
}
