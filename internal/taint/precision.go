package taint

// precision.go hosts the two precision passes the engine runs on top of
// plain propagation: consuming internal/alias points-to facts so tainted
// stores through unresolved pointers connect to later loads, and the
// internal/pathcheck post-pass that refutes alerts whose sink-reaching
// branch constraints are contradictory. Both are on by default and
// individually disabled by Options.NoAlias / Options.NoPathcheck.

import (
	"sort"
	"sync"

	"fits/internal/alias"
	"fits/internal/cfg"
	"fits/internal/dataflow"
	"fits/internal/pathcheck"
)

// PrecisionCache memoizes the pure per-function inputs of the precision
// post-passes across engines over one binary: reaching-definition
// truncation, points-to facts, and per-site path-feasibility verdicts
// depend only on the binary's bytes, so callers that scan the same target
// repeatedly (corpus fixpoint rounds, warm-cache rescans) share one cache
// via Options.Precision instead of recomputing per engine. The zero value
// is ready to use and safe for concurrent engines.
type PrecisionCache struct {
	mu    sync.Mutex
	flow  map[uint32]bool        // function entry -> FlowFacts.Truncated
	facts map[uint32]*alias.Facts // function entry -> points-to facts
	path  map[pathKey]pathcheck.Result
}

type pathKey struct{ entry, site uint32 }

// span samples the injected clock/alloc counter around one pass execution
// and reports the deltas to report. With no injected clock it is free.
func (e *Engine) span(report func(wallNs, allocs int64)) func() {
	if report == nil || e.opts.Clock == nil {
		return func() {}
	}
	t0 := e.opts.Clock()
	var a0 int64
	if e.opts.AllocCount != nil {
		a0 = e.opts.AllocCount()
	}
	return func() {
		var da int64
		if e.opts.AllocCount != nil {
			da = e.opts.AllocCount() - a0
		}
		report(e.opts.Clock()-t0, da)
	}
}

// aliasFactsFor returns the memoized points-to facts of fn, or nil when
// the pass is disabled.
func (e *Engine) aliasFactsFor(fn *cfg.Function) *alias.Facts {
	if e.opts.NoAlias {
		return nil
	}
	if f, ok := e.aliasFacts[fn.Entry]; ok {
		return f
	}
	f := e.computeAliasFacts(fn)
	e.aliasFacts[fn.Entry] = f
	return f
}

// computeAliasFacts runs (or fetches from the shared PrecisionCache) the
// points-to analysis of fn, charging actual computation to the alias span.
func (e *Engine) computeAliasFacts(fn *cfg.Function) *alias.Facts {
	c := e.opts.Precision
	if c == nil {
		stop := e.span(e.opts.OnAlias)
		f := alias.Analyze(e.bin, fn)
		stop()
		return f
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if f, ok := c.facts[fn.Entry]; ok {
		return f
	}
	stop := e.span(e.opts.OnAlias)
	f := alias.Analyze(e.bin, fn)
	stop()
	if c.facts == nil {
		c.facts = map[uint32]*alias.Facts{}
	}
	c.facts[fn.Entry] = f
	return f
}

// pathCheckAt runs (or fetches from the shared PrecisionCache) the
// path-feasibility verdict for the alert site in fn.
func (e *Engine) pathCheckAt(fn *cfg.Function, site uint32) pathcheck.Result {
	c := e.opts.Precision
	if c == nil {
		return pathcheck.Check(e.bin, fn, site)
	}
	k := pathKey{entry: fn.Entry, site: site}
	c.mu.Lock()
	defer c.mu.Unlock()
	if r, ok := c.path[k]; ok {
		return r
	}
	r := pathcheck.Check(e.bin, fn, site)
	if c.path == nil {
		c.path = map[pathKey]pathcheck.Result{}
	}
	c.path[k] = r
	return r
}

// flowTruncated reports whether fn's reaching-definition fixpoint runs out
// of budget, consulting the shared PrecisionCache when present.
func (e *Engine) flowTruncated(fn *cfg.Function) bool {
	c := e.opts.Precision
	if c == nil {
		return dataflow.Analyze(fn, nil).Truncated
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if d, ok := c.flow[fn.Entry]; ok {
		return d
	}
	d := dataflow.Analyze(fn, nil).Truncated
	if c.flow == nil {
		c.flow = map[uint32]bool{}
	}
	c.flow[fn.Entry] = d
	return d
}

// aliasStoreTainted records that the store at instr in fn put a tainted
// value through an unresolved pointer: every abstract location the store
// may write becomes tainted.
func (e *Engine) aliasStoreTainted(fn *cfg.Function, instr uint32) {
	f := e.aliasFactsFor(fn)
	if f == nil {
		return
	}
	for _, l := range f.Stores[instr] {
		e.aliasTainted[l] = true
	}
}

// aliasLoadTainted reports whether the load at instr in fn may read an
// abstract location a tainted store resolved to. The empty-set fast path
// keeps binaries without unresolved tainted stores — the common case —
// from paying for fact computation at all.
func (e *Engine) aliasLoadTainted(fn *cfg.Function, instr uint32) bool {
	if len(e.aliasTainted) == 0 || e.opts.NoAlias {
		return false
	}
	f := e.aliasFactsFor(fn)
	if f == nil {
		return false
	}
	hit := false
	for _, l := range f.Loads[instr] {
		for t := range e.aliasTainted {
			if l.Overlaps(t) {
				hit = true
			}
		}
	}
	return hit
}

// finishAlerts applies the post-passes to every collected alert: path
// feasibility (refute alerts whose branch constraints are contradictory)
// and degradation tagging (mark alerts in functions where the
// reaching-definition fixpoint or the alias fact budget tripped, so API
// consumers can see where precision silently fell back).
func (e *Engine) finishAlerts() {
	if len(e.alerts) == 0 {
		return
	}
	sites := make([]uint32, 0, len(e.alerts))
	for s := range e.alerts {
		sites = append(sites, s)
	}
	sort.Slice(sites, func(i, j int) bool { return sites[i] < sites[j] })

	stop := e.span(e.opts.OnPathcheck)
	if !e.opts.NoPathcheck {
		for _, site := range sites {
			a := e.alerts[site]
			if a.Filtered {
				continue
			}
			fn, ok := e.model.FuncAt(a.Func)
			if !ok {
				continue
			}
			if r := e.pathCheckAt(fn, a.Site); r.Infeasible {
				a.Refuted = r.Refuted
			}
		}
	}
	stop()

	degraded := map[uint32]bool{}
	for _, site := range sites {
		a := e.alerts[site]
		fn, ok := e.model.FuncAt(a.Func)
		if !ok {
			continue
		}
		d, seen := degraded[a.Func]
		if !seen {
			d = e.flowTruncated(fn)
			if !d {
				if f := e.aliasFactsFor(fn); f != nil && f.Truncated {
					d = true
				}
			}
			degraded[a.Func] = d
		}
		a.Degraded = d
	}
}

// DegradedCount reports how many collected alerts carry the Degraded mark,
// for budget-exhaustion metrics.
func (e *Engine) DegradedCount() int {
	n := 0
	for _, a := range e.alerts {
		if a.Degraded {
			n++
		}
	}
	return n
}
