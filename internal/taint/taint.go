// Package taint implements STA, the static taint analysis engine of the
// paper's §3.4: given taint sources (classical interface functions and/or
// inferred intermediate taint sources) and risky-library-function sinks, it
// computes the reachability of unsanitized user data from sources to sinks
// over the recovered CFG and call graph.
//
// Two precision regimes coexist, mirroring the engine's observed behaviour:
//
//   - Classical sources taint a *memory region*. A stripped binary has no
//     object boundaries, so once an interface function is seen writing into
//     writable memory, every sink consuming a writable-memory pointer is
//     reachable — cheap, but the source of STA's high false-positive rate
//     and of its blindness to values materialized on the heap.
//
//   - Intermediate sources taint the *value* returned at each call site,
//     which is tracked precisely through locals, parameters, wrapper calls
//     and stores, with a range-check sanitization rule and Karonte-style
//     string filtering.
package taint

import (
	"sort"

	"fits/internal/alias"
	"fits/internal/binimg"
	"fits/internal/cfg"
	"fits/internal/dataflow"
	"fits/internal/isa"
	"fits/internal/know"
)

// SourceKind says what seeded an alert.
type SourceKind uint8

// Source kinds.
const (
	FromCTSRegion SourceKind = iota
	FromCTSValue
	FromITS
	// FromChannel marks taint seeded at a cross-binary channel getter call
	// site (nvram_get-style) whose key another binary was seen writing
	// tainted data to; only the corpus fixpoint produces these.
	FromChannel
)

func (k SourceKind) String() string {
	switch k {
	case FromCTSRegion:
		return "cts-region"
	case FromCTSValue:
		return "cts-value"
	case FromChannel:
		return "xchan"
	default:
		return "its"
	}
}

// Alert is one potential vulnerability report.
type Alert struct {
	Binary string
	// Site is the sink call instruction address; Func the entry of the
	// function containing it.
	Site uint32
	Func uint32
	Sink string
	Kind know.SinkKind
	From SourceKind
	// Key is the field-index string of the originating ITS call site, when
	// recoverable; the string filter keys on it. For FromChannel alerts it
	// is the channel key whose getter seeded the flow.
	Key string
	// Via is the cross-binary channel endpoint the flow passes through,
	// rendered "<chan>:<key>" (e.g. "nvram:wl_key"). On a channel-write
	// alert (Kind SinkChannelWrite) it names the endpoint being written;
	// on a FromChannel sink alert it names the endpoint that seeded the
	// flow. Empty for purely intra-binary flows.
	Via string
	// Filtered alerts matched the system-data string filter and are not
	// reported.
	Filtered bool
	// Refuted is non-empty when the path-feasibility pass proved the sink
	// unreachable under its collected branch constraints; it renders the
	// contradicting constraint pair. Refuted alerts are excluded from Run
	// like filtered ones and retained in AllAlerts for diagnostics.
	Refuted string
	// Degraded marks alerts from functions where an analysis budget
	// tripped (reaching-definition fixpoint or alias fact budget): the
	// engine fell back to coarser tracking around them, so their precision
	// is that of the pre-budget passes.
	Degraded bool
}

// Options configures an analysis run.
type Options struct {
	// UseCTS enables classical sources; UseITS enables intermediate ones.
	UseCTS bool
	// ITS lists intermediate taint source function entries whose return
	// value carries the fetched data.
	ITS []uint32
	// ITSOut lists sources that write the fetched data through pointer
	// parameters instead: entry -> dangerous output parameter indexes.
	// (The paper's ITS definition covers "return values, pointers, global
	// variables".)
	ITSOut map[uint32][]int
	// StringFilter drops ITS alerts whose key names system data.
	StringFilter bool
	// MaxDepth bounds interprocedural value-taint propagation.
	MaxDepth int

	// ChannelSetters, when non-nil, reports tainted values reaching these
	// channel setter imports as SinkChannelWrite alerts (the raw material
	// of the corpus fixpoint). Single-binary scans leave it nil.
	ChannelSetters map[string]know.ChannelSpec
	// ChannelSeeds seeds value taint at channel getter call sites: for
	// each channel kind, the set of keys other binaries were seen writing
	// tainted data to. Keyless getters (spawned-helper argv) match the
	// SelfPath key.
	ChannelSeeds map[know.ChanKind]map[string]bool
	// SelfPath is the image path of the binary under analysis; it is the
	// implicit key of keyless channel getters (a helper binary's argv is
	// keyed by the helper's own path).
	SelfPath string

	// NoAlias disables the bounded points-to pass that connects tainted
	// stores through unresolved pointers to later loads of overlapping
	// abstract locations. On by default; the escape hatch exists so a
	// regression can be bisected to the pass.
	NoAlias bool
	// NoPathcheck disables the sink-to-source path-feasibility pass that
	// refutes alerts with unsatisfiable branch constraints.
	NoPathcheck bool
	// Precision, when non-nil, memoizes the pure per-function inputs of
	// the precision passes across engines over the same binary (repeated
	// scans: corpus fixpoint rounds, warm-cache rescans). Purely a cost
	// saving — results are byte-identical with or without it.
	Precision *PrecisionCache

	// Clock/AllocCount, when set, sample wall nanoseconds and heap-object
	// counts around the alias and pathcheck passes; the deltas are handed
	// to OnAlias/OnPathcheck. Injected by impure callers — this package is
	// under the nondet lint and never reads a clock itself.
	Clock       func() int64
	AllocCount  func() int64
	OnAlias     func(wallNs, allocs int64)
	OnPathcheck func(wallNs, allocs int64)
}

// DefaultMaxDepth bounds value propagation; deep wrapper chains stay in
// reach while runaway recursion does not.
const DefaultMaxDepth = 8

// SystemDataKeys are the field names treated as system-populated; the
// string filter removes ITS alerts keyed on them (paper §4.3: subnet mask,
// MAC address, IP address fetches are not attacker-controlled).
var SystemDataKeys = map[string]bool{
	"mac_addr": true, "lan_ip": true, "subnet_mask": true,
	"gateway": true, "dns_server": true, "mac": true, "ip_addr": true,
}

// Engine analyzes one binary.
type Engine struct {
	bin   *binimg.Binary
	model *cfg.Model
	opts  Options

	alerts map[uint32]*Alert // by sink site; first source kind wins
	// taintedGlobals collects global word addresses holding ITS-derived
	// values (value-level store tracking).
	taintedGlobals map[uint32]bool
	// taintedObjects are buffers written by pointer-output sources:
	// base address -> originating key string.
	taintedObjects map[uint32]string
	memo           map[memoKey]bool

	// aliasFacts caches the per-function points-to analysis; aliasTainted
	// collects the abstract locations tainted stores were resolved to.
	aliasFacts   map[uint32]*alias.Facts
	aliasTainted map[alias.Loc]bool
}

// New prepares an engine.
func New(bin *binimg.Binary, model *cfg.Model, opts Options) *Engine {
	if opts.MaxDepth == 0 {
		opts.MaxDepth = DefaultMaxDepth
	}
	return &Engine{
		bin:            bin,
		model:          model,
		opts:           opts,
		alerts:         map[uint32]*Alert{},
		taintedGlobals: map[uint32]bool{},
		taintedObjects: map[uint32]string{},
		aliasFacts:     map[uint32]*alias.Facts{},
		aliasTainted:   map[alias.Loc]bool{},
	}
}

// Run performs the analysis and returns unfiltered alerts sorted by site.
// Filtered alerts are retained (marked) for diagnostics via AllAlerts.
func (e *Engine) Run() []Alert {
	if e.opts.UseCTS {
		e.runCTS()
	}
	if len(e.opts.ITS) > 0 || len(e.opts.ITSOut) > 0 {
		e.runITS()
	}
	if len(e.opts.ChannelSeeds) > 0 {
		e.runChannels()
	}
	e.finishAlerts()
	var out []Alert
	for _, a := range e.alerts {
		if !a.Filtered && a.Refuted == "" {
			out = append(out, *a)
		}
	}
	SortAlerts(out)
	return out
}

// AllAlerts returns every alert including filtered ones.
func (e *Engine) AllAlerts() []Alert {
	var out []Alert
	for _, a := range e.alerts {
		out = append(out, *a)
	}
	SortAlerts(out)
	return out
}

// SortAlerts orders alerts fully deterministically: by sink site, then
// containing function, sink name, kind, source kind, key, cross-binary hop
// endpoint (Via), refuting constraint, degraded mark (non-degraded first),
// and binary. Both engines report in this order, so alert
// lists — and the service responses built from them — are byte-stable
// across runs and worker counts even if one site ever carries several
// alerts.
func SortAlerts(out []Alert) {
	sort.Slice(out, func(i, j int) bool {
		a, b := &out[i], &out[j]
		if a.Site != b.Site {
			return a.Site < b.Site
		}
		if a.Func != b.Func {
			return a.Func < b.Func
		}
		if a.Sink != b.Sink {
			return a.Sink < b.Sink
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.From != b.From {
			return a.From < b.From
		}
		if a.Key != b.Key {
			return a.Key < b.Key
		}
		if a.Via != b.Via {
			return a.Via < b.Via
		}
		if a.Refuted != b.Refuted {
			return a.Refuted < b.Refuted
		}
		if a.Degraded != b.Degraded {
			return b.Degraded
		}
		return a.Binary < b.Binary
	})
}

func (e *Engine) report(a Alert) {
	if prev, ok := e.alerts[a.Site]; ok {
		// Keep the existing alert; unfilter it if the new evidence is not
		// filtered.
		if prev.Filtered && !a.Filtered {
			*prev = a
		}
		return
	}
	cp := a
	e.alerts[a.Site] = &cp
}

// sinkSites enumerates sink call sites across the binary.
func (e *Engine) sinkSites() []cfg.CallSite {
	var out []cfg.CallSite
	for _, f := range e.model.FuncsInOrder() {
		for _, cs := range f.Calls {
			if know.IsSink(cs.ImportName) {
				out = append(out, cs)
			}
		}
	}
	return out
}

// writableConstant reports whether a constant denotes a pointer into
// writable memory (data or bss).
func (e *Engine) writableConstant(c uint32) bool {
	sec := e.bin.SectionOf(c)
	return sec == "data" || sec == "bss"
}

// bindsWritable reports whether the argument register at a call site
// resolves — possibly through parameter pass-through chains up the call
// graph — to a pointer into writable memory.
func (e *Engine) bindsWritable(fn *cfg.Function, addr uint32, reg isa.Reg, depth int) bool {
	if depth > 8 {
		return false
	}
	o := dataflow.BacktrackArg(fn, addr, reg)
	switch o.Kind {
	case dataflow.OriginConst:
		return e.writableConstant(o.Const)
	case dataflow.OriginParam:
		for _, cs := range e.model.Callers[fn.Entry] {
			caller, ok := e.model.FuncAt(cs.Caller)
			if ok && e.bindsWritable(caller, cs.Addr, isa.Reg(o.Param), depth+1) {
				return true
			}
		}
	}
	return false
}

// runCTS performs region-level classical-source analysis.
func (e *Engine) runCTS() {
	regionTainted := false
	for _, f := range e.model.FuncsInOrder() {
		for _, cs := range f.Calls {
			spec, ok := know.Sources[cs.ImportName]
			if !ok {
				continue
			}
			caller, _ := e.model.FuncAt(cs.Caller)
			if caller == nil {
				continue
			}
			for _, pi := range spec.TaintedParams {
				if e.bindsWritable(caller, cs.Addr, isa.Reg(pi), 0) {
					// The interface function writes user data into
					// statically-known writable memory: the region model
					// considers all of it attacker-influenced.
					regionTainted = true
				}
			}
			if spec.TaintsReturn {
				e.propagateValue(caller, cs.Addr, FromCTSValue, "", 0)
			}
		}
	}
	if !regionTainted {
		return
	}
	for _, cs := range e.sinkSites() {
		spec := know.Sinks[cs.ImportName]
		caller, _ := e.model.FuncAt(cs.Caller)
		if caller == nil {
			continue
		}
		for _, pi := range spec.DangerousParams {
			c, ok := dataflow.BacktrackRegister(caller, cs.Addr, isa.Reg(pi))
			if !ok || !e.writableConstant(c) {
				continue
			}
			e.report(Alert{
				Binary: e.bin.Name, Site: cs.Addr, Func: cs.Caller,
				Sink: cs.ImportName, Kind: spec.Kind, From: FromCTSRegion,
			})
			break
		}
	}
}

// runITS performs value-level analysis from every ITS call site.
func (e *Engine) runITS() {
	its := map[uint32]bool{}
	for _, entry := range e.opts.ITS {
		its[entry] = true
	}
	for _, f := range e.model.FuncsInOrder() {
		for _, cs := range f.Calls {
			if cs.Target == 0 {
				continue
			}
			retITS := its[cs.Target]
			outParams, outITS := e.opts.ITSOut[cs.Target]
			if !retITS && !outITS {
				continue
			}
			caller, _ := e.model.FuncAt(cs.Caller)
			if caller == nil {
				continue
			}
			key := ""
			if c, ok := dataflow.BacktrackRegister(caller, cs.Addr, isa.R0); ok {
				if s, ok := dataflow.ClassifyStringConstant(e.bin, c); ok {
					key = s
				}
			}
			if retITS {
				e.propagateValue(caller, cs.Addr, FromITS, key, 0)
			}
			for _, pi := range outParams {
				// The source writes user data through this pointer: a
				// statically known buffer becomes a tainted object.
				if c, ok := dataflow.BacktrackRegister(caller, cs.Addr, isa.Reg(pi)); ok && e.writableConstant(c) {
					e.taintObject(c, key)
				}
			}
		}
	}
	// Second pass: globals that received tainted values feed later loads —
	// and, with the points-to pass on, abstract locations tainted through
	// unresolved stores feed loads in functions propagated earlier.
	if len(e.taintedGlobals) > 0 || len(e.aliasTainted) > 0 {
		for _, f := range e.model.FuncsInOrder() {
			e.propagateGlobals(f)
		}
	}
	// Sinks consuming pointers into tainted objects.
	if len(e.taintedObjects) > 0 {
		e.scanObjectSinks()
	}
}

// runChannels seeds value taint at cross-binary channel getter call sites
// whose key the corpus fixpoint marked tainted. A getter behaves like an
// intermediate source whose data arrives from another binary: its return
// value is tracked with full value-level precision, and the seeding
// endpoint is recorded in Alert.Via so provenance chains can be stitched
// together across binaries.
func (e *Engine) runChannels() {
	for _, f := range e.model.FuncsInOrder() {
		for _, cs := range f.Calls {
			spec, ok := know.ChannelGetters[cs.ImportName]
			if !ok || !spec.TaintsReturn {
				continue
			}
			keys := e.opts.ChannelSeeds[spec.Chan]
			if len(keys) == 0 {
				continue
			}
			caller, _ := e.model.FuncAt(cs.Caller)
			if caller == nil {
				continue
			}
			key := e.opts.SelfPath
			if spec.KeyParam >= 0 {
				c, ok := dataflow.BacktrackRegister(caller, cs.Addr, isa.Reg(spec.KeyParam))
				if !ok {
					continue
				}
				s, ok := dataflow.ClassifyStringConstant(e.bin, c)
				if !ok {
					continue
				}
				key = s
			}
			if !keys[key] {
				continue
			}
			via := spec.Chan.String() + ":" + key
			e.propagateChannel(caller, cs.Addr, key, via)
		}
	}
}

// taintObject marks a 64-byte buffer as holding fetched user data.
const taintedObjectSpan = 64

func (e *Engine) taintObject(base uint32, key string) {
	if _, ok := e.taintedObjects[base]; !ok {
		e.taintedObjects[base] = key
	}
}

// scanObjectSinks reports sinks whose dangerous argument points into a
// buffer written by a pointer-output source.
func (e *Engine) scanObjectSinks() {
	// When two tainted spans overlap a constant, the object with the
	// closest (highest) base wins; picking the first map hit instead made
	// the reported key vary run to run.
	inObject := func(c uint32) (string, bool) {
		var bestBase uint32
		var bestKey string
		found := false
		for base, key := range e.taintedObjects {
			if c >= base && c < base+taintedObjectSpan && (!found || base > bestBase) {
				bestBase, bestKey, found = base, key, true
			}
		}
		return bestKey, found
	}
	for _, cs := range e.sinkSites() {
		spec := know.Sinks[cs.ImportName]
		caller, _ := e.model.FuncAt(cs.Caller)
		if caller == nil {
			continue
		}
		for _, pi := range spec.DangerousParams {
			c, ok := dataflow.BacktrackRegister(caller, cs.Addr, isa.Reg(pi))
			if !ok {
				continue
			}
			key, hit := inObject(c)
			if !hit {
				continue
			}
			a := Alert{
				Binary: e.bin.Name, Site: cs.Addr, Func: cs.Caller,
				Sink: cs.ImportName, Kind: spec.Kind, From: FromITS, Key: key,
			}
			if e.opts.StringFilter && SystemDataKeys[key] {
				a.Filtered = true
			}
			e.report(a)
			break
		}
	}
}
