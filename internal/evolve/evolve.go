// Package evolve compares the analysis results of two versions of one
// firmware image: it aligns custom functions across the versions, carries
// alerts and inferred intermediate taint sources through the alignment, and
// classifies each as appeared, fixed, or persisted.
//
// Alignment runs in four tiers, strongest first. Byte-identical binaries map
// every function to itself; binaries rebuilt through a reuse plan inherit
// the plan's function map (which survives uniform address shifts); remaining
// functions match by shared dynamic-export name; and what is left falls back
// to behavioral similarity — cosine distance over the paper's BFV vectors —
// which is what catches renamed functions whose behavior is unchanged.
package evolve

import (
	"context"
	"math"
	"sort"

	"fits/internal/bfv"
	"fits/internal/infer"
	"fits/internal/loader"
	"fits/internal/modelcache"
)

// Alert mirrors the pipeline's alert shape without importing it: one
// potentially-vulnerable flow in one binary.
type Alert struct {
	Binary string
	Site   uint32
	Func   uint32
	Sink   string
	Kind   string
	Source string
}

// ITS is one inferred intermediate taint source: a ranked function entry.
type ITS struct {
	Entry uint32
	Score float64
}

// TargetAnalysis bundles one target's analysis outcome for diffing.
type TargetAnalysis struct {
	Target *loader.Target
	Alerts []Alert
	ITS    []ITS
}

// MatchKind labels the alignment tier that paired two functions.
type MatchKind uint8

// Alignment tiers, strongest first.
const (
	MatchIdentical MatchKind = iota
	MatchReuse
	MatchName
	MatchSimilarity
)

func (k MatchKind) String() string {
	switch k {
	case MatchIdentical:
		return "identical"
	case MatchReuse:
		return "reuse"
	case MatchName:
		return "name"
	case MatchSimilarity:
		return "similarity"
	}
	return "unknown"
}

// SimilarityThreshold is the minimum cosine similarity between BFV vectors
// for the fallback alignment tier. Renames barely perturb a function's
// behavioral vector, while genuinely different functions in practice score
// far below this.
const SimilarityThreshold = 0.98

// Rename is a similarity-tier match between two differently named exports.
type Rename struct {
	OldName    string
	NewName    string
	OldEntry   uint32
	NewEntry   uint32
	Similarity float64
}

// TargetDiff is the version-to-version comparison of one target binary.
type TargetDiff struct {
	Path string
	// Alignment outcome: matched function counts per tier, plus functions
	// only one side has.
	MatchedIdentical  int
	MatchedReuse      int
	MatchedName       int
	MatchedSimilarity int
	UnmatchedNew      int
	UnmatchedOld      int
	Renames           []Rename
	// Alert churn. Persisted alerts are reported in new-version coordinates.
	Appeared  []Alert
	Fixed     []Alert
	Persisted []Alert
	// ITS churn, same convention.
	ITSAppeared  []ITS
	ITSFixed     []ITS
	ITSPersisted []ITS
}

// DiffReport is the full comparison of two firmware versions.
type DiffReport struct {
	Targets []TargetDiff
	// Aggregate alert and ITS churn counts across all targets.
	AlertsAppeared  int
	AlertsFixed     int
	AlertsPersisted int
	ITSAppeared     int
	ITSFixed        int
	ITSPersisted    int
	// Model reuse over the new version's binaries: ReusedFuncs of TotalFuncs
	// custom functions were replayed from the old version (or served whole
	// from the cache) instead of recovered from scratch.
	ReusedFuncs int
	TotalFuncs  int
	ReuseRatio  float64
}

// BuildReport aligns and diffs two analyzed firmware versions. Targets pair
// by filesystem path; a target present in only one version contributes all
// of its alerts as appeared (new side) or fixed (old side). The report is
// deterministic: targets sort by path and every list carries explicit sort
// keys.
func BuildReport(ctx context.Context, oldSide, newSide []TargetAnalysis, cfgn infer.Config) (*DiffReport, error) {
	oldByPath := map[string]*TargetAnalysis{}
	for i := range oldSide {
		oldByPath[oldSide[i].Target.Path] = &oldSide[i]
	}
	report := &DiffReport{}
	matched := map[string]bool{}
	for i := range newSide {
		na := &newSide[i]
		oa := oldByPath[na.Target.Path]
		if oa != nil {
			matched[na.Target.Path] = true
		}
		td, err := diffTarget(ctx, oa, na, cfgn)
		if err != nil {
			return nil, err
		}
		report.Targets = append(report.Targets, *td)
	}
	for i := range oldSide {
		oa := &oldSide[i]
		if matched[oa.Target.Path] {
			continue
		}
		report.Targets = append(report.Targets, TargetDiff{
			Path:         oa.Target.Path,
			UnmatchedOld: len(oa.Target.Model.CustomFuncs()),
			Fixed:        append([]Alert(nil), oa.Alerts...),
			ITSFixed:     append([]ITS(nil), oa.ITS...),
		})
	}
	sort.Slice(report.Targets, func(i, j int) bool {
		return report.Targets[i].Path < report.Targets[j].Path
	})
	for i := range report.Targets {
		td := &report.Targets[i]
		report.AlertsAppeared += len(td.Appeared)
		report.AlertsFixed += len(td.Fixed)
		report.AlertsPersisted += len(td.Persisted)
		report.ITSAppeared += len(td.ITSAppeared)
		report.ITSFixed += len(td.ITSFixed)
		report.ITSPersisted += len(td.ITSPersisted)
	}
	report.ReusedFuncs, report.TotalFuncs = reuseStats(newSide)
	if report.TotalFuncs > 0 {
		report.ReuseRatio = float64(report.ReusedFuncs) / float64(report.TotalFuncs)
	}
	return report, nil
}

// alignment maps function entries between two versions of one binary.
type alignment struct {
	newToOld map[uint32]uint32
	oldToNew map[uint32]uint32
	kind     map[uint32]MatchKind // keyed by new entry
	sim      map[uint32]float64   // similarity-tier score, keyed by new entry
}

func (al *alignment) add(newEntry, oldEntry uint32, k MatchKind) {
	al.newToOld[newEntry] = oldEntry
	al.oldToNew[oldEntry] = newEntry
	al.kind[newEntry] = k
}

func diffTarget(ctx context.Context, oa, na *TargetAnalysis, cfgn infer.Config) (*TargetDiff, error) {
	td := &TargetDiff{Path: na.Target.Path}
	if oa == nil {
		td.UnmatchedNew = len(na.Target.Model.CustomFuncs())
		td.Appeared = append([]Alert(nil), na.Alerts...)
		td.ITSAppeared = append([]ITS(nil), na.ITS...)
		return td, nil
	}
	al, err := align(ctx, oa.Target, na.Target, cfgn)
	if err != nil {
		return nil, err
	}
	for newEntry, k := range al.kind {
		switch k {
		case MatchIdentical:
			td.MatchedIdentical++
		case MatchReuse:
			td.MatchedReuse++
		case MatchName:
			td.MatchedName++
		case MatchSimilarity:
			td.MatchedSimilarity++
		}
		if k == MatchSimilarity {
			oldEntry := al.newToOld[newEntry]
			oldName, okOld := funcLabel(oa.Target, oldEntry)
			newName, okNew := funcLabel(na.Target, newEntry)
			if okOld && okNew && oldName != newName {
				td.Renames = append(td.Renames, Rename{
					OldName: oldName, NewName: newName,
					OldEntry: oldEntry, NewEntry: newEntry,
					Similarity: al.sim[newEntry],
				})
			}
		}
	}
	sort.Slice(td.Renames, func(i, j int) bool {
		return td.Renames[i].NewEntry < td.Renames[j].NewEntry
	})
	for _, f := range na.Target.Model.CustomFuncs() {
		if _, ok := al.newToOld[f.Entry]; !ok {
			td.UnmatchedNew++
		}
	}
	for _, f := range oa.Target.Model.CustomFuncs() {
		if _, ok := al.oldToNew[f.Entry]; !ok {
			td.UnmatchedOld++
		}
	}
	td.Appeared, td.Fixed, td.Persisted = churnAlerts(al, oa.Alerts, na.Alerts)
	td.ITSAppeared, td.ITSFixed, td.ITSPersisted = churnITS(al, oa.ITS, na.ITS)
	return td, nil
}

// funcLabel names a function entry: dynamic-export name first (all stripped
// production binaries still carry those), debug symbol otherwise.
func funcLabel(t *loader.Target, entry uint32) (string, bool) {
	if name, ok := t.Bin.ExportAt(entry); ok {
		return name, true
	}
	return t.Bin.FuncName(entry)
}

// align pairs the custom functions of two versions of one binary through
// the four tiers.
func align(ctx context.Context, oldT, newT *loader.Target, cfgn infer.Config) (*alignment, error) {
	al := &alignment{
		newToOld: map[uint32]uint32{},
		oldToNew: map[uint32]uint32{},
		kind:     map[uint32]MatchKind{},
		sim:      map[uint32]float64{},
	}
	newCustoms := newT.Model.CustomFuncs()
	oldEntries := map[uint32]bool{}
	for _, f := range oldT.Model.CustomFuncs() {
		oldEntries[f.Entry] = true
	}

	// Tier 1: byte-identical binaries map every function to itself.
	if newT.Hash != (modelcache.Hash{}) && newT.Hash == oldT.Hash {
		for _, f := range newCustoms {
			if oldEntries[f.Entry] {
				al.add(f.Entry, f.Entry, MatchIdentical)
			}
		}
		return al, nil
	}

	// Tier 2: the reuse plan's function map, built during the incremental
	// model load, pairs validated replays (including uniformly shifted code).
	if newT.Prev != nil && newT.Prev.Target.Path == oldT.Path && newT.Prev.Plan != nil {
		for newEntry, oldEntry := range newT.Prev.Plan.FuncMap {
			if oldEntries[oldEntry] {
				al.add(newEntry, oldEntry, MatchReuse)
			}
		}
	}

	// Tier 3: shared dynamic-export names.
	oldByName := map[string]uint32{}
	for _, e := range oldT.Bin.Exports {
		if oldEntries[e.Addr] {
			oldByName[e.Name] = e.Addr
		}
	}
	for _, e := range newT.Bin.Exports {
		if _, taken := al.newToOld[e.Addr]; taken {
			continue
		}
		oldEntry, ok := oldByName[e.Name]
		if !ok {
			continue
		}
		if _, taken := al.oldToNew[oldEntry]; taken {
			continue
		}
		if _, ok := newT.Model.FuncAt(e.Addr); !ok {
			continue
		}
		al.add(e.Addr, oldEntry, MatchName)
	}

	// Tier 4: behavioral similarity over the remaining functions.
	if err := alignBySimilarity(ctx, al, oldT, newT, cfgn); err != nil {
		return nil, err
	}
	return al, nil
}

// alignBySimilarity greedily pairs leftover functions whose BFV vectors are
// near-identical, taking candidate pairs in descending similarity with
// entry-address tie-breaks so the outcome is deterministic.
func alignBySimilarity(ctx context.Context, al *alignment, oldT, newT *loader.Target, cfgn infer.Config) error {
	oldFuncs, oldVecs, err := infer.TargetVectors(ctx, oldT, cfgn)
	if err != nil {
		return err
	}
	newFuncs, newVecs, err := infer.TargetVectors(ctx, newT, cfgn)
	if err != nil {
		return err
	}
	type cand struct {
		newEntry, oldEntry uint32
		sim                float64
	}
	var cands []cand
	for i, nf := range newFuncs {
		if _, taken := al.newToOld[nf.Entry]; taken {
			continue
		}
		for j, of := range oldFuncs {
			if _, taken := al.oldToNew[of.Entry]; taken {
				continue
			}
			if s := cosine(newVecs[i], oldVecs[j]); s >= SimilarityThreshold {
				cands = append(cands, cand{newEntry: nf.Entry, oldEntry: of.Entry, sim: s})
			}
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].sim != cands[j].sim {
			return cands[i].sim > cands[j].sim
		}
		if cands[i].newEntry != cands[j].newEntry {
			return cands[i].newEntry < cands[j].newEntry
		}
		return cands[i].oldEntry < cands[j].oldEntry
	})
	for _, c := range cands {
		if _, taken := al.newToOld[c.newEntry]; taken {
			continue
		}
		if _, taken := al.oldToNew[c.oldEntry]; taken {
			continue
		}
		al.add(c.newEntry, c.oldEntry, MatchSimilarity)
		al.sim[c.newEntry] = c.sim
	}
	return nil
}

func cosine(a, b bfv.Vector) float64 {
	var dot, na, nb float64
	for i := 0; i < bfv.Dim; i++ {
		dot += a[i] * b[i]
		na += a[i] * a[i]
		nb += b[i] * b[i]
	}
	if na == 0 || nb == 0 {
		if na == nb {
			return 1
		}
		return 0
	}
	return dot / math.Sqrt(na*nb)
}

// churnAlerts classifies alerts through the alignment. The first pass
// demands the exact relocated site (old site shifted by the function's
// entry delta) with identical sink, kind and source; a second pass relaxes
// to same-function-same-sink so an alert that merely moved within a patched
// function still counts as persisted.
func churnAlerts(al *alignment, oldAlerts, newAlerts []Alert) (appeared, fixed, persisted []Alert) {
	usedOld := make([]bool, len(oldAlerts))
	usedNew := make([]bool, len(newAlerts))
	match := func(exactSite bool) {
		for i := range newAlerts {
			if usedNew[i] {
				continue
			}
			na := &newAlerts[i]
			oldFunc, ok := al.newToOld[na.Func]
			if !ok {
				continue
			}
			delta := na.Func - oldFunc
			for j := range oldAlerts {
				if usedOld[j] {
					continue
				}
				oa := &oldAlerts[j]
				if oa.Func != oldFunc || oa.Sink != na.Sink || oa.Kind != na.Kind || oa.Source != na.Source {
					continue
				}
				if exactSite && oa.Site+delta != na.Site {
					continue
				}
				usedNew[i], usedOld[j] = true, true
				persisted = append(persisted, *na)
				break
			}
		}
	}
	match(true)
	match(false)
	for i := range newAlerts {
		if !usedNew[i] {
			appeared = append(appeared, newAlerts[i])
		}
	}
	for j := range oldAlerts {
		if !usedOld[j] {
			fixed = append(fixed, oldAlerts[j])
		}
	}
	return appeared, fixed, persisted
}

// churnITS carries the inferred-source lists through the alignment: an old
// ITS whose function maps to a new-side ITS persisted, otherwise it is
// reported fixed; new-side ITSs with no aligned predecessor appeared.
func churnITS(al *alignment, oldITS, newITS []ITS) (appeared, fixed, persisted []ITS) {
	newByEntry := map[uint32]int{}
	for i, its := range newITS {
		newByEntry[its.Entry] = i
	}
	usedNew := make([]bool, len(newITS))
	for _, o := range oldITS {
		newEntry, ok := al.oldToNew[o.Entry]
		if ok {
			if i, hit := newByEntry[newEntry]; hit && !usedNew[i] {
				usedNew[i] = true
				persisted = append(persisted, newITS[i])
				continue
			}
		}
		fixed = append(fixed, o)
	}
	for i := range newITS {
		if !usedNew[i] {
			appeared = append(appeared, newITS[i])
		}
	}
	return appeared, fixed, persisted
}

// reuseStats totals custom functions across the new version's targets and
// their (deduplicated) libraries, counting how many were reused from the
// previous version: replayed by a reuse plan, served whole from the cache,
// or byte-identical.
func reuseStats(newSide []TargetAnalysis) (reused, total int) {
	libSeen := map[string]bool{}
	for i := range newSide {
		t := newSide[i].Target
		n := len(t.Model.CustomFuncs())
		total += n
		if p := t.Prev; p != nil {
			switch {
			case p.Identical:
				reused += n
			case p.Plan != nil:
				// Prefer the plan's count even for cached models: Align fills
				// it in on cache hits, keeping the ratio identical whether
				// the model was rebuilt or served whole.
				reused += p.Plan.Reused
			case p.CachedModel:
				reused += n
			}
		}
		for name, m := range t.LibModels {
			if libSeen[name] {
				continue
			}
			libSeen[name] = true
			ln := len(m.CustomFuncs())
			total += ln
			h := t.LibHashes[name]
			if p := t.Prev; p != nil && h != (modelcache.Hash{}) && p.Target.LibHashes[name] == h {
				reused += ln
			}
		}
	}
	return reused, total
}
