// Package firmware implements the firmware image format of the synthetic
// corpus: a packed filesystem of binaries and configuration files, optionally
// wrapped in a vendor encoding layer, preceded by arbitrary bootloader bytes.
//
// Unpacking mirrors the paper's pre-processing stage: the image is carved by
// scanning for magic bytes anywhere in the byte stream (as Binwalk does),
// vendor encodings are recognized by their header magic and decrypted with
// keys derived from the header, and the filesystem is then parsed.
package firmware

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sort"
)

// Magics for the filesystem container and the two vendor encoding wrappers.
var (
	MagicFS     = []byte("FWIM1")
	MagicXOR    = []byte("FWXR1")
	MagicStream = []byte("FWST1")
)

// Unpacking errors. ErrCorrupt is the root of every malformed-image
// error: ErrNoImage, ErrChecksum, and the binimg decode errors all wrap
// it, so one errors.Is(err, firmware.ErrCorrupt) tells any caller —
// notably fitsd, which maps it to HTTP 422 — that the input itself is
// bad and retrying the same bytes can never succeed.
var (
	ErrCorrupt  = errors.New("firmware: corrupt image")
	ErrNoImage  = fmt.Errorf("%w: no filesystem image found", ErrCorrupt)
	ErrChecksum = fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
)

// Scheme selects the vendor encoding applied around the filesystem.
type Scheme uint8

// Encoding schemes. SchemeXOR is a rolling XOR whose seed byte sits in the
// wrapper header; SchemeStream is a keystream cipher whose 32-bit key is
// stored obfuscated in the header — both patterns appear in real vendor
// firmware and both are recoverable from the image alone.
const (
	SchemeNone Scheme = iota
	SchemeXOR
	SchemeStream
)

func (s Scheme) String() string {
	switch s {
	case SchemeNone:
		return "none"
	case SchemeXOR:
		return "xor"
	case SchemeStream:
		return "stream"
	default:
		return fmt.Sprintf("scheme(%d)", uint8(s))
	}
}

// File is one entry of the firmware filesystem.
type File struct {
	Path string
	Data []byte
}

// Image is an unpacked firmware filesystem with its identity header.
type Image struct {
	Vendor  string
	Product string
	Version string
	Files   []File
}

// Lookup returns the file at path.
func (im *Image) Lookup(path string) (File, bool) {
	for _, f := range im.Files {
		if f.Path == path {
			return f, true
		}
	}
	return File{}, false
}

// Paths returns all file paths in sorted order.
func (im *Image) Paths() []string {
	out := make([]string, len(im.Files))
	for i, f := range im.Files {
		out[i] = f.Path
	}
	sort.Strings(out)
	return out
}

// PackOptions controls image serialization.
type PackOptions struct {
	Scheme  Scheme
	Key     uint32 // encryption key material; ignored for SchemeNone
	Padding int    // bootloader-style junk bytes before the image
	PadSeed byte   // deterministic padding content
}

// encodeFS serializes the filesystem with a trailing CRC.
func (im *Image) encodeFS() []byte {
	var buf bytes.Buffer
	buf.Write(MagicFS)
	wstr := func(s string) {
		var n [4]byte
		binary.LittleEndian.PutUint32(n[:], uint32(len(s)))
		buf.Write(n[:])
		buf.WriteString(s)
	}
	wstr(im.Vendor)
	wstr(im.Product)
	wstr(im.Version)
	var n [4]byte
	binary.LittleEndian.PutUint32(n[:], uint32(len(im.Files)))
	buf.Write(n[:])
	for _, f := range im.Files {
		wstr(f.Path)
		binary.LittleEndian.PutUint32(n[:], uint32(len(f.Data)))
		buf.Write(n[:])
		buf.Write(f.Data)
	}
	sum := crc32.ChecksumIEEE(buf.Bytes())
	binary.LittleEndian.PutUint32(n[:], sum)
	buf.Write(n[:])
	return buf.Bytes()
}

// Pack serializes the image, applies the vendor encoding, and prepends
// padding bytes so that unpackers must carve rather than parse at offset 0.
func (im *Image) Pack(opts PackOptions) []byte {
	payload := im.encodeFS()
	var body []byte
	switch opts.Scheme {
	case SchemeXOR:
		body = wrapXOR(payload, byte(opts.Key))
	case SchemeStream:
		body = wrapStream(payload, opts.Key)
	default:
		body = payload
	}
	if opts.Padding <= 0 {
		return body
	}
	pad := make([]byte, opts.Padding)
	x := opts.PadSeed | 1
	for i := range pad {
		// Cheap deterministic junk that cannot collide with the magics,
		// which are all printable ASCII: keep the high bit set.
		x = x*37 + 101
		pad[i] = x | 0x80
	}
	return append(pad, body...)
}

// wrapXOR encodes payload with a rolling XOR. The wrapper stores the seed in
// the clear: vendors rely on obscurity, and unpackers recover it from the
// header exactly as the paper's pre-processing does.
func wrapXOR(payload []byte, seed byte) []byte {
	out := make([]byte, 0, len(MagicXOR)+1+4+len(payload))
	out = append(out, MagicXOR...)
	out = append(out, seed)
	var n [4]byte
	binary.LittleEndian.PutUint32(n[:], uint32(len(payload)))
	out = append(out, n[:]...)
	k := seed
	for _, b := range payload {
		out = append(out, b^k)
		k = k*31 + 7
	}
	return out
}

func unwrapXOR(src []byte) ([]byte, error) {
	if len(src) < len(MagicXOR)+5 {
		return nil, ErrCorrupt
	}
	seed := src[len(MagicXOR)]
	n := binary.LittleEndian.Uint32(src[len(MagicXOR)+1:])
	body := src[len(MagicXOR)+5:]
	if uint32(len(body)) < n {
		return nil, ErrCorrupt
	}
	out := make([]byte, n)
	k := seed
	for i := range out {
		out[i] = body[i] ^ k
		k = k*31 + 7
	}
	return out, nil
}

// streamKeystream derives a keystream byte sequence from a 32-bit key using
// a multiplicative congruential generator.
func streamByte(state *uint32) byte {
	*state = *state*1664525 + 1013904223
	return byte(*state >> 24)
}

// wrapStream encodes payload with an LCG keystream. The key is stored in the
// header obfuscated by a fixed vendor constant.
func wrapStream(payload []byte, key uint32) []byte {
	const vendorConst = 0x5f3759df
	out := make([]byte, 0, len(MagicStream)+8+len(payload))
	out = append(out, MagicStream...)
	var n [4]byte
	binary.LittleEndian.PutUint32(n[:], key^vendorConst)
	out = append(out, n[:]...)
	binary.LittleEndian.PutUint32(n[:], uint32(len(payload)))
	out = append(out, n[:]...)
	state := key
	for _, b := range payload {
		out = append(out, b^streamByte(&state))
	}
	return out
}

func unwrapStream(src []byte) ([]byte, error) {
	const vendorConst = 0x5f3759df
	if len(src) < len(MagicStream)+8 {
		return nil, ErrCorrupt
	}
	key := binary.LittleEndian.Uint32(src[len(MagicStream):]) ^ vendorConst
	n := binary.LittleEndian.Uint32(src[len(MagicStream)+4:])
	body := src[len(MagicStream)+8:]
	if uint32(len(body)) < n {
		return nil, ErrCorrupt
	}
	out := make([]byte, n)
	state := key
	for i := range out {
		out[i] = body[i] ^ streamByte(&state)
	}
	return out, nil
}

// decodeFS parses a cleartext filesystem payload and verifies its checksum.
// File data in the returned image aliases src (views, not copies); callers
// own src and must not modify it while the image is live.
func decodeFS(src []byte) (*Image, error) {
	if !bytes.HasPrefix(src, MagicFS) {
		return nil, ErrCorrupt
	}
	off := len(MagicFS)
	ru32 := func() (uint32, error) {
		if off+4 > len(src) {
			return 0, ErrCorrupt
		}
		v := binary.LittleEndian.Uint32(src[off:])
		off += 4
		return v, nil
	}
	rstr := func() (string, error) {
		n, err := ru32()
		if err != nil || off+int(n) > len(src) || n > 1<<16 {
			return "", ErrCorrupt
		}
		s := string(src[off : off+int(n)])
		off += int(n)
		return s, nil
	}
	im := &Image{}
	var err error
	if im.Vendor, err = rstr(); err != nil {
		return nil, err
	}
	if im.Product, err = rstr(); err != nil {
		return nil, err
	}
	if im.Version, err = rstr(); err != nil {
		return nil, err
	}
	count, err := ru32()
	if err != nil || count > 1<<16 {
		return nil, ErrCorrupt
	}
	for i := uint32(0); i < count; i++ {
		path, err := rstr()
		if err != nil {
			return nil, err
		}
		n, err := ru32()
		if err != nil || off+int(n) > len(src) {
			return nil, ErrCorrupt
		}
		// Zero-copy: the file's bytes are a capped view over the payload, not
		// a copy. The cap stops appends from clobbering the next entry.
		data := src[off : off+int(n) : off+int(n)]
		off += int(n)
		im.Files = append(im.Files, File{Path: path, Data: data})
	}
	sum, err := ru32()
	if err != nil {
		return nil, err
	}
	if crc32.ChecksumIEEE(src[:off-4]) != sum {
		return nil, ErrChecksum
	}
	return im, nil
}

// Unpack carves and decodes a firmware image from an arbitrary byte stream.
// It scans for any known magic (filesystem or vendor wrapper) at any offset,
// unwraps encodings, and parses the filesystem.
//
// Unpacking is zero-copy: for a plaintext image the files' Data slices are
// views into raw itself; for an encoded image they are views into the single
// buffer the vendor layer was decrypted into. Either way raw must not be
// modified while the returned image (or anything decoded from its files) is
// in use.
func Unpack(raw []byte) (*Image, error) {
	type candidate struct {
		off    int
		scheme Scheme
	}
	var cands []candidate
	for _, m := range []struct {
		magic  []byte
		scheme Scheme
	}{
		{MagicFS, SchemeNone},
		{MagicXOR, SchemeXOR},
		{MagicStream, SchemeStream},
	} {
		for off := 0; ; {
			i := bytes.Index(raw[off:], m.magic)
			if i < 0 {
				break
			}
			cands = append(cands, candidate{off: off + i, scheme: m.scheme})
			off += i + 1
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].off < cands[j].off })
	var firstErr error
	for _, c := range cands {
		var payload []byte
		var err error
		switch c.scheme {
		case SchemeXOR:
			payload, err = unwrapXOR(raw[c.off:])
		case SchemeStream:
			payload, err = unwrapStream(raw[c.off:])
		default:
			payload = raw[c.off:]
		}
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		im, err := decodeFS(payload)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		return im, nil
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return nil, ErrNoImage
}

// DetectScheme reports the vendor encoding of an image without unpacking it.
func DetectScheme(raw []byte) Scheme {
	ix := bytes.Index(raw, MagicXOR)
	is := bytes.Index(raw, MagicStream)
	ifs := bytes.Index(raw, MagicFS)
	best := SchemeNone
	bestOff := ifs
	if ix >= 0 && (bestOff < 0 || ix < bestOff) {
		best, bestOff = SchemeXOR, ix
	}
	if is >= 0 && (bestOff < 0 || is < bestOff) {
		best = SchemeStream
	}
	return best
}
