package firmware

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Property: Unpack never panics on arbitrary byte streams.
func TestQuickUnpackNeverPanics(t *testing.T) {
	f := func(seed int64) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		r := rand.New(rand.NewSource(seed))
		buf := make([]byte, r.Intn(1024))
		r.Read(buf)
		// Sprinkle magics at random offsets to reach the deeper parsers.
		for _, m := range [][]byte{MagicFS, MagicXOR, MagicStream} {
			if len(buf) > len(m)+4 && r.Intn(2) == 0 {
				copy(buf[r.Intn(len(buf)-len(m)):], m)
			}
		}
		img, err := Unpack(buf)
		return err != nil || img != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: truncating a packed image anywhere yields an error, not a panic.
func TestQuickUnpackTruncations(t *testing.T) {
	for _, scheme := range []Scheme{SchemeNone, SchemeXOR, SchemeStream} {
		raw := sample().Pack(PackOptions{Scheme: scheme, Key: 42})
		for cut := 0; cut < len(raw); cut += 3 {
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("%v: panic at cut %d: %v", scheme, cut, r)
					}
				}()
				if img, err := Unpack(raw[:cut]); err == nil && img == nil {
					t.Fatalf("%v: nil image with nil error at cut %d", scheme, cut)
				}
			}()
		}
	}
}

// Property: corrupting the ciphertext of an encrypted image is detected by
// the checksum (never silently accepted with altered contents).
func TestQuickCiphertextCorruptionDetected(t *testing.T) {
	im := sample()
	r := rand.New(rand.NewSource(3))
	for _, scheme := range []Scheme{SchemeXOR, SchemeStream} {
		raw := im.Pack(PackOptions{Scheme: scheme, Key: 99})
		for i := 0; i < 200; i++ {
			mut := append([]byte(nil), raw...)
			// Corrupt within the payload area (past the wrapper header).
			pos := 16 + r.Intn(len(mut)-16)
			mut[pos] ^= byte(1 + r.Intn(255))
			got, err := Unpack(mut)
			if err != nil {
				continue
			}
			// A successful unpack must decode to the original content
			// (the flipped byte can only be in trailing slack).
			if got.Vendor != im.Vendor || len(got.Files) != len(im.Files) {
				t.Fatalf("%v: corruption at %d silently accepted", scheme, pos)
			}
		}
	}
}
