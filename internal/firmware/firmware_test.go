package firmware

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func sample() *Image {
	return &Image{
		Vendor:  "NETGEAR",
		Product: "R7000P",
		Version: "V1.3.0.8",
		Files: []File{
			{Path: "bin/httpd", Data: []byte("FBIN1-pretend-binary")},
			{Path: "lib/libc.so", Data: []byte{0, 1, 2, 3, 255}},
			{Path: "etc/version", Data: []byte("1.3.0.8\n")},
		},
	}
}

func TestPackUnpackPlain(t *testing.T) {
	im := sample()
	raw := im.Pack(PackOptions{})
	got, err := Unpack(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(im, got) {
		t.Errorf("round trip mismatch: %+v", got)
	}
}

func TestPackUnpackAllSchemesWithPadding(t *testing.T) {
	for _, scheme := range []Scheme{SchemeNone, SchemeXOR, SchemeStream} {
		im := sample()
		raw := im.Pack(PackOptions{Scheme: scheme, Key: 0xdeadbeef, Padding: 513, PadSeed: 7})
		got, err := Unpack(raw)
		if err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}
		if !reflect.DeepEqual(im, got) {
			t.Errorf("%v: round trip mismatch", scheme)
		}
	}
}

func TestEncryptionActuallyEncrypts(t *testing.T) {
	im := sample()
	for _, scheme := range []Scheme{SchemeXOR, SchemeStream} {
		raw := im.Pack(PackOptions{Scheme: scheme, Key: 1234})
		if bytes.Contains(raw, []byte("httpd")) {
			t.Errorf("%v: plaintext visible in packed image", scheme)
		}
	}
	plain := im.Pack(PackOptions{})
	if !bytes.Contains(plain, []byte("httpd")) {
		t.Error("plaintext should be visible without encryption")
	}
}

func TestDifferentKeysDifferentCiphertext(t *testing.T) {
	im := sample()
	a := im.Pack(PackOptions{Scheme: SchemeStream, Key: 1})
	b := im.Pack(PackOptions{Scheme: SchemeStream, Key: 2})
	if bytes.Equal(a, b) {
		t.Error("stream cipher ignores key")
	}
}

func TestChecksumDetectsCorruption(t *testing.T) {
	raw := sample().Pack(PackOptions{})
	// Flip a byte in the middle of the payload.
	raw[len(raw)/2] ^= 0xff
	if _, err := Unpack(raw); err == nil {
		t.Error("expected error for corrupted payload")
	}
}

func TestUnpackNoImage(t *testing.T) {
	if _, err := Unpack([]byte("not firmware at all")); err != ErrNoImage {
		t.Errorf("err = %v, want ErrNoImage", err)
	}
	if _, err := Unpack(nil); err != ErrNoImage {
		t.Errorf("err = %v, want ErrNoImage", err)
	}
}

func TestUnpackTruncatedWrapper(t *testing.T) {
	raw := sample().Pack(PackOptions{Scheme: SchemeXOR, Key: 5})
	if _, err := Unpack(raw[:len(MagicXOR)+2]); err == nil {
		t.Error("expected error for truncated wrapper")
	}
	raw = sample().Pack(PackOptions{Scheme: SchemeStream, Key: 5})
	if _, err := Unpack(raw[:len(MagicStream)+4]); err == nil {
		t.Error("expected error for truncated stream wrapper")
	}
}

func TestCarvingSkipsLeadingJunk(t *testing.T) {
	im := sample()
	raw := im.Pack(PackOptions{Scheme: SchemeXOR, Key: 99, Padding: 4096, PadSeed: 3})
	got, err := Unpack(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.Vendor != "NETGEAR" {
		t.Errorf("vendor = %q", got.Vendor)
	}
}

func TestDetectScheme(t *testing.T) {
	im := sample()
	cases := []Scheme{SchemeNone, SchemeXOR, SchemeStream}
	for _, want := range cases {
		raw := im.Pack(PackOptions{Scheme: want, Key: 7, Padding: 64, PadSeed: 1})
		if got := DetectScheme(raw); got != want {
			t.Errorf("DetectScheme(%v image) = %v", want, got)
		}
	}
	if got := DetectScheme([]byte("junk")); got != SchemeNone {
		t.Errorf("DetectScheme(junk) = %v", got)
	}
}

func TestLookupAndPaths(t *testing.T) {
	im := sample()
	f, ok := im.Lookup("bin/httpd")
	if !ok || !bytes.HasPrefix(f.Data, []byte("FBIN1")) {
		t.Errorf("Lookup = %+v, %v", f, ok)
	}
	if _, ok := im.Lookup("bin/nope"); ok {
		t.Error("unexpected file")
	}
	paths := im.Paths()
	if len(paths) != 3 || paths[0] != "bin/httpd" {
		t.Errorf("paths = %v", paths)
	}
}

func TestSchemeString(t *testing.T) {
	if SchemeNone.String() != "none" || SchemeXOR.String() != "xor" || SchemeStream.String() != "stream" {
		t.Error("scheme stringers wrong")
	}
	if Scheme(9).String() == "" {
		t.Error("unknown scheme stringer empty")
	}
}

func TestEmptyImage(t *testing.T) {
	im := &Image{Vendor: "X"}
	got, err := Unpack(im.Pack(PackOptions{}))
	if err != nil {
		t.Fatal(err)
	}
	if got.Vendor != "X" || len(got.Files) != 0 {
		t.Errorf("got %+v", got)
	}
}

// Property: pack/unpack round-trips random images under all schemes.
func TestQuickRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		randStr := func() string {
			n := 1 + r.Intn(10)
			b := make([]byte, n)
			for i := range b {
				b[i] = byte('a' + r.Intn(26))
			}
			return string(b)
		}
		im := &Image{Vendor: randStr(), Product: randStr(), Version: randStr()}
		for i := 0; i < r.Intn(5); i++ {
			data := make([]byte, r.Intn(200))
			r.Read(data)
			im.Files = append(im.Files, File{Path: randStr(), Data: data})
		}
		opts := PackOptions{
			Scheme:  Scheme(r.Intn(3)),
			Key:     r.Uint32(),
			Padding: r.Intn(300),
			PadSeed: byte(r.Uint32()),
		}
		got, err := Unpack(im.Pack(opts))
		if err != nil {
			return false
		}
		if len(got.Files) == 0 {
			got.Files = nil
		}
		want := *im
		if len(want.Files) == 0 {
			want.Files = nil
		}
		return reflect.DeepEqual(&want, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
