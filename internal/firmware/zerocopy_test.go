package firmware

import (
	"bytes"
	"testing"
)

// testImage returns an image with one large file so copy costs would be
// visible in both the alias check and the allocation count.
func testImage() *Image {
	big := bytes.Repeat([]byte{0xAB, 0xCD, 0xEF, 0x01}, 4096)
	return &Image{
		Vendor:  "acme",
		Product: "router",
		Version: "1.0",
		Files: []File{
			{Path: "bin/httpd", Data: big},
			{Path: "etc/conf", Data: []byte("port=80\n")},
		},
	}
}

// TestUnpackPlainAliasesInput proves the plain-scheme decode is zero-copy:
// file data in the unpacked image is a view over the raw input, so mutating
// the input shows through the view.
func TestUnpackPlainAliasesInput(t *testing.T) {
	raw := testImage().Pack(PackOptions{Scheme: SchemeNone, Padding: 64, PadSeed: 3})
	im, err := Unpack(raw)
	if err != nil {
		t.Fatal(err)
	}
	f, ok := im.Lookup("bin/httpd")
	if !ok || len(f.Data) == 0 {
		t.Fatal("missing file")
	}
	idx := bytes.Index(raw, f.Data)
	if idx < 0 {
		t.Fatal("file bytes not found in raw input")
	}
	raw[idx] ^= 0xFF
	if f.Data[0] != raw[idx] {
		t.Fatal("file data is a copy, want a view over the input")
	}
	raw[idx] ^= 0xFF
	// The view must be capped: appending to it may not clobber the bytes of
	// the next field in the container.
	if cap(f.Data) != len(f.Data) {
		t.Fatalf("file view not capped: len %d cap %d", len(f.Data), cap(f.Data))
	}
}

// TestUnpackPlainAllocBudget pins the plain-scheme unpack to a small constant
// allocation count: headers, the file slice, and path strings — never the
// file contents. A copying decode of the 16 KiB file would blow the budget
// immediately.
func TestUnpackPlainAllocBudget(t *testing.T) {
	raw := testImage().Pack(PackOptions{Scheme: SchemeNone, Padding: 64, PadSeed: 3})
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := Unpack(raw); err != nil {
			t.Fatal(err)
		}
	})
	// Observed ~12; the slack absorbs runtime jitter, not a data copy.
	if allocs > 24 {
		t.Fatalf("plain Unpack allocates %v objects per run, want <= 24", allocs)
	}
}

// TestUnpackStreamSingleBuffer checks the encrypted path decrypts once into a
// single buffer that the files then view: file data aliases the decrypted
// payload rather than being copied out of it.
func TestUnpackStreamSingleBuffer(t *testing.T) {
	raw := testImage().Pack(PackOptions{Scheme: SchemeStream, Key: 0xdead, Padding: 32, PadSeed: 7})
	idx := bytes.Index(raw, MagicStream)
	if idx < 0 {
		t.Fatal("stream magic not found")
	}
	payload, err := unwrapStream(raw[idx:])
	if err != nil {
		t.Fatal(err)
	}
	im, err := decodeFS(payload)
	if err != nil {
		t.Fatal(err)
	}
	a, ok := im.Lookup("bin/httpd")
	if !ok || len(a.Data) == 0 {
		t.Fatal("missing file")
	}
	pi := bytes.Index(payload, a.Data)
	if pi < 0 {
		t.Fatal("file bytes not found in decrypted payload")
	}
	payload[pi] ^= 0xFF
	if a.Data[0] != payload[pi] {
		t.Fatal("file data is a copy, want a view over the decode buffer")
	}
}
