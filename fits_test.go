package fits

import (
	"testing"

	"fits/internal/synth"
)

func sample(t *testing.T, idx int) *synth.Sample {
	t.Helper()
	s, err := synth.Generate(synth.Dataset()[idx])
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestAnalyzeEndToEnd(t *testing.T) {
	s := sample(t, 0)
	res, err := Analyze(s.Packed, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Vendor != s.Manifest.Vendor || res.Product != s.Manifest.Product {
		t.Errorf("identity = %s %s", res.Vendor, res.Product)
	}
	if len(res.Targets) != len(s.Manifest.NetBinaries) {
		t.Fatalf("targets = %d, want %d", len(res.Targets), len(s.Manifest.NetBinaries))
	}
	tgt := res.Targets[0]
	if tgt.NumFuncs < 100 || len(tgt.Candidates) == 0 {
		t.Fatalf("funcs=%d candidates=%d", tgt.NumFuncs, len(tgt.Candidates))
	}
	// The planted ITS must sit in the top-3 for this sample.
	truth := map[uint32]bool{}
	for _, its := range s.Manifest.ITS {
		truth[its.Entry] = true
	}
	found := false
	for _, c := range tgt.TopCandidates(3) {
		if truth[c.Entry] {
			found = true
		}
	}
	if !found {
		t.Error("planted ITS not in top-3")
	}
}

func TestAnalyzeRejectsGarbage(t *testing.T) {
	if _, err := Analyze([]byte("junk"), DefaultOptions()); err == nil {
		t.Error("expected error")
	}
}

func TestScanBothEngines(t *testing.T) {
	s := sample(t, 42) // Tenda: many planted bugs
	res, err := Analyze(s.Packed, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	tgt := res.Targets[0]
	var its []uint32
	truth := map[uint32]bool{}
	for _, it := range s.Manifest.ITS {
		truth[it.Entry] = true
	}
	for _, c := range tgt.TopCandidates(3) {
		if truth[c.Entry] {
			its = append(its, c.Entry)
		}
	}
	if len(its) == 0 {
		t.Fatal("no verified ITS in top-3")
	}

	static, err := tgt.Scan(ScanOptions{Engine: EngineStatic, ITS: its, StringFilter: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(static) == 0 {
		t.Error("static engine found nothing with ITSs")
	}
	for _, a := range static {
		if a.Sink == "" || a.Site == 0 || a.Kind == "" {
			t.Errorf("malformed alert %+v", a)
		}
	}
	symbolic, err := tgt.Scan(ScanOptions{Engine: EngineSymbolic, ITS: its})
	if err != nil {
		t.Fatal(err)
	}
	// The budgeted symbolic engine covers far less than the static engine.
	if len(symbolic) >= len(static) {
		t.Errorf("symbolic=%d should trail static=%d", len(symbolic), len(static))
	}
}

func TestScanRequiresAnalyzedTarget(t *testing.T) {
	tr := &TargetResult{}
	if _, err := tr.Scan(ScanOptions{}); err == nil {
		t.Error("expected error for detached target")
	}
}

func TestKnowledgeAccessors(t *testing.T) {
	if len(Sinks()) < 5 || len(Sources()) < 5 || len(Anchors()) < 8 {
		t.Errorf("knowledge base sizes: sinks=%d sources=%d anchors=%d",
			len(Sinks()), len(Sources()), len(Anchors()))
	}
}
