package fits

// Tests for the corpus entry point's contract: batching images onto one
// shared scheduler and intern table is invisible in the output — every
// Results[i] is deep-equal to a standalone AnalyzeContext of images[i], at
// every worker count — and a failing image reports its index.

import (
	"context"
	"reflect"
	"strings"
	"testing"
)

func TestAnalyzeCorpusMatchesSequential(t *testing.T) {
	// Samples 0, 1 and 42 cover single- and multi-target images plus the
	// bug-dense Tenda sample.
	images := [][]byte{sample(t, 0).Packed, sample(t, 1).Packed, sample(t, 42).Packed}

	var want []comparableResult
	for i, raw := range images {
		res, err := AnalyzeContext(context.Background(), raw, DefaultOptions())
		if err != nil {
			t.Fatalf("sequential image %d: %v", i, err)
		}
		want = append(want, normalize(res))
	}

	for _, workers := range []int{1, 2, 4, 8} {
		opts := DefaultOptions()
		opts.Parallelism = workers
		results, err := AnalyzeCorpus(context.Background(), images, opts)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(results) != len(images) {
			t.Fatalf("workers=%d: %d results for %d images", workers, len(results), len(images))
		}
		for i, res := range results {
			if got := normalize(res); !reflect.DeepEqual(got, want[i]) {
				t.Errorf("workers=%d: image %d differs from standalone analysis\nwant: %+v\ngot:  %+v",
					workers, i, want[i], got)
			}
		}
	}
}

func TestAnalyzeCorpusReportsFailingIndex(t *testing.T) {
	images := [][]byte{sample(t, 0).Packed, []byte("not firmware")}
	_, err := AnalyzeCorpus(context.Background(), images, DefaultOptions())
	if err == nil {
		t.Fatal("corrupt image produced no error")
	}
	if !strings.Contains(err.Error(), "image 1") {
		t.Errorf("err = %v, want the failing image's index", err)
	}
}

func TestAnalyzeCorpusEmpty(t *testing.T) {
	results, err := AnalyzeCorpus(context.Background(), nil, DefaultOptions())
	if err != nil || len(results) != 0 {
		t.Fatalf("empty corpus: results=%v err=%v", results, err)
	}
}
