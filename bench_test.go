package fits

// The benchmark harness regenerates every table and figure of the paper's
// evaluation section against the synthetic corpus. Each benchmark prints its
// paper-style table once and reports the headline numbers as metrics, so
//
//	go test -bench=. -benchmem
//
// reproduces the complete evaluation. Absolute values differ from the paper
// (the substrate is a synthetic corpus, not the authors' firmware archive);
// the shapes — who wins, by what factor, where the failures sit — are the
// reproduction targets, recorded in EXPERIMENTS.md.

import (
	"context"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"fits/internal/eval"
	"fits/internal/infer"
	"fits/internal/loader"
	"fits/internal/stagetime"
	"fits/internal/synth"
	"fits/internal/verify"
)

var (
	corpusOnce sync.Once
	corpus     []*synth.Sample
)

// benchCorpus generates the 59-sample dataset once for all benchmarks.
func benchCorpus(b *testing.B) []*synth.Sample {
	b.Helper()
	corpusOnce.Do(func() {
		var err error
		corpus, err = synth.GenerateCorpus()
		if err != nil {
			b.Fatalf("corpus: %v", err)
		}
	})
	return corpus
}

var printOnce = map[string]*sync.Once{}
var printMu sync.Mutex

func printTable(name, content string) {
	printMu.Lock()
	once, ok := printOnce[name]
	if !ok {
		once = &sync.Once{}
		printOnce[name] = once
	}
	printMu.Unlock()
	once.Do(func() { fmt.Printf("\n== %s ==\n%s\n", name, content) })
}

// BenchmarkTable3_ITSInference regenerates Table 3: per-vendor top-1/2/3
// inference precision and analysis times over all 59 samples.
func BenchmarkTable3_ITSInference(b *testing.B) {
	samples := benchCorpus(b)
	var t1, t2, t3 float64
	for i := 0; i < b.N; i++ {
		results := eval.RunInferenceCorpus(samples, infer.DefaultConfig())
		t1, t2, t3 = eval.OverallPrecision(results)
		printTable("Table 3: ITS inference precision", eval.FormatTable3(eval.Table3(results)))
	}
	b.ReportMetric(100*t1, "top1-%")
	b.ReportMetric(100*t2, "top2-%")
	b.ReportMetric(100*t3, "top3-%")
}

// BenchmarkTable3_BootStompBaseline regenerates the RQ1 comparison: the
// keyword heuristic proposes sources in many firmware but none are ITSs.
func BenchmarkTable3_BootStompBaseline(b *testing.B) {
	samples := benchCorpus(b)
	var proposed, correct int
	for i := 0; i < b.N; i++ {
		proposed, correct = eval.BootStompBaseline(samples)
	}
	printTable("RQ1: BootStomp baseline",
		fmt.Sprintf("proposals in %d/%d firmware; correct taint sources: %d\n", proposed, len(samples), correct))
	b.ReportMetric(float64(correct), "correct-sources")
}

// BenchmarkTable4_PartialResults regenerates Table 4: per-firmware detail
// (binary, function count, ITS address, rank) for a vendor selection.
func BenchmarkTable4_PartialResults(b *testing.B) {
	samples := benchCorpus(b)
	var rows []eval.DetailRow
	for i := 0; i < b.N; i++ {
		rows = eval.Table4(samples, 3)
	}
	printTable("Table 4: partial ITS inference results", eval.FormatTable4(rows))
	b.ReportMetric(float64(len(rows)), "rows")
}

// BenchmarkTable5_BugFinding regenerates Table 5: alerts, bugs and times
// for Karonte, Karonte-ITS, STA and STA-ITS over the corpus.
func BenchmarkTable5_BugFinding(b *testing.B) {
	samples := benchCorpus(b)
	var totalBugs [4]int
	for i := 0; i < b.N; i++ {
		rows, ta, tb := eval.Table5(samples)
		totalBugs = tb
		printTable("Table 5: bug finding results", eval.FormatTable5(rows, ta, tb))
	}
	b.ReportMetric(float64(totalBugs[eval.EngineKaronte]), "karonte-bugs")
	b.ReportMetric(float64(totalBugs[eval.EngineKaronteITS]), "karonte-its-bugs")
	b.ReportMetric(float64(totalBugs[eval.EngineSTA]), "sta-bugs")
	b.ReportMetric(float64(totalBugs[eval.EngineSTAITS]), "sta-its-bugs")
}

// BenchmarkTable6_FalsePositives regenerates Table 6: per-engine false
// positive rates.
func BenchmarkTable6_FalsePositives(b *testing.B) {
	samples := benchCorpus(b)
	var fp [4]float64
	for i := 0; i < b.N; i++ {
		_, ta, tb := eval.Table5(samples)
		fp = eval.FalsePositiveRates(ta, tb)
	}
	printTable("Table 6: false positive rates", fmt.Sprintf(
		"Karonte %.1f%%   Karonte-ITS %.1f%%   STA %.1f%%   STA-ITS %.1f%%\n",
		100*fp[0], 100*fp[1], 100*fp[2], 100*fp[3]))
	b.ReportMetric(100*fp[eval.EngineSTA], "sta-fp-%")
	b.ReportMetric(100*fp[eval.EngineSTAITS], "sta-its-fp-%")
}

// BenchmarkFigure4_TimeOverhead regenerates Figure 4: analysis time against
// function count and binary size, reported as correlations.
func BenchmarkFigure4_TimeOverhead(b *testing.B) {
	samples := benchCorpus(b)
	var byFuncs, bySize float64
	for i := 0; i < b.N; i++ {
		points := eval.Figure4(samples)
		byFuncs = eval.Correlation(points, func(p eval.TimePoint) float64 { return float64(p.Funcs) })
		bySize = eval.Correlation(points, func(p eval.TimePoint) float64 { return p.SizeKB })
		if i == 0 {
			var s string
			for _, p := range points[:minInt(8, len(points))] {
				s += fmt.Sprintf("  funcs=%4d size=%6.1fKB time=%s\n", p.Funcs, p.SizeKB, p.Elapsed.Round(1e6))
			}
			s += fmt.Sprintf("  ... (%d samples)\n  corr(time, funcs)=%.2f  corr(time, size)=%.2f\n",
				len(points), byFuncs, bySize)
			printTable("Figure 4: time overhead", s)
		}
	}
	b.ReportMetric(byFuncs, "corr-funcs")
	b.ReportMetric(bySize, "corr-size")
}

// BenchmarkFigure5_Ablation regenerates Figure 5: the CF-1..CF-11 feature
// ablation against the full BFV.
func BenchmarkFigure5_Ablation(b *testing.B) {
	samples := benchCorpus(b)
	var rows []eval.AblationRow
	for i := 0; i < b.N; i++ {
		rows = eval.Figure5(samples)
	}
	printTable("Figure 5: BFV ablation (CF-i = drop feature i)", eval.FormatAblation(rows))
	b.ReportMetric(100*rows[0].Top3, "bfv-top3-%")
}

// BenchmarkTable7_Representations regenerates Table 7: BFV against the
// Augmented-CFG and Attributed-CFG baselines.
func BenchmarkTable7_Representations(b *testing.B) {
	samples := benchCorpus(b)
	var rows []eval.AblationRow
	for i := 0; i < b.N; i++ {
		rows = eval.Table7(samples)
	}
	printTable("Table 7: representation comparison", eval.FormatAblation(rows))
	b.ReportMetric(100*rows[len(rows)-1].Top3, "bfv-top3-%")
}

// BenchmarkTable8_Distances regenerates Table 8: the similarity metric
// comparison for the scoring stage.
func BenchmarkTable8_Distances(b *testing.B) {
	samples := benchCorpus(b)
	var rows []eval.AblationRow
	for i := 0; i < b.N; i++ {
		rows = eval.Table8(samples)
	}
	printTable("Table 8: scoring metric comparison", eval.FormatAblation(rows))
	b.ReportMetric(100*rows[len(rows)-1].Top3, "cosine-top3-%")
}

// BenchmarkRQ4_StrategyBaselines regenerates the RQ4 strategy comparison:
// clustering against no-clustering, PCA, standardization and normalization.
func BenchmarkRQ4_StrategyBaselines(b *testing.B) {
	samples := benchCorpus(b)
	var rows []eval.AblationRow
	for i := 0; i < b.N; i++ {
		rows = eval.RQ4Strategies(samples)
	}
	printTable("RQ4: candidate selection strategies", eval.FormatAblation(rows))
	b.ReportMetric(100*rows[len(rows)-1].Top3, "cluster-top3-%")
}

// BenchmarkCaseStudy_DeepFlow regenerates the §4.3 case study: the deepest
// planted flow is reachable from the intermediate source but not from the
// classical source under engine budgets.
func BenchmarkCaseStudy_DeepFlow(b *testing.B) {
	samples := benchCorpus(b)
	deepest := eval.DeepestSamples(samples)[0]
	var cs eval.CaseStudy
	for i := 0; i < b.N; i++ {
		cs = eval.RunCaseStudy(deepest)
	}
	printTable("Case study: deepest flow", fmt.Sprintf(
		"firmware %s: source-to-sink depth %d calls, ITS-to-sink %d calls\n"+
			"  Karonte(CTS)=%v Karonte-ITS=%v STA(CTS)=%v STA-ITS=%v\n",
		cs.Product, cs.CTSDepth, cs.ITSDepth,
		cs.KaronteCTS, cs.KaronteITS, cs.STACTS, cs.STAITS))
	b.ReportMetric(float64(cs.CTSDepth), "cts-depth")
	b.ReportMetric(float64(cs.ITSDepth), "its-depth")
}

// BenchmarkPipeline_SingleFirmware measures the end-to-end cost of the
// public API on one firmware image (unpack + model + infer), with the
// per-stage breakdown reported as extra metrics: <stage>-ns/op and
// <stage>-allocs/op for decode, lift, cfg, reachdef and infer (reachdef is
// nested inside infer — spans, not a partition). Taint and the precision
// passes nested inside it (alias, pathcheck — spans of one scan, not a
// partition of it) are measured by one scan per target outside the timed
// loop and reported per scan, so the headline ns/op stays comparable with
// pre-stage-metric baselines.
func BenchmarkPipeline_SingleFirmware(b *testing.B) {
	samples := benchCorpus(b)
	raw := samples[0].Packed
	opts := DefaultOptions()
	stages := new(StageTimer)
	opts.Stages = stages
	b.ResetTimer()
	var res *Result
	var err error
	for i := 0; i < b.N; i++ {
		if res, err = Analyze(raw, opts); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	scanStages := map[stagetime.Stage]bool{
		stagetime.Taint: true, stagetime.Alias: true, stagetime.PathCheck: true,
	}
	for _, st := range stagetime.Stages() {
		if scanStages[st] {
			continue
		}
		b.ReportMetric(float64(stages.WallNanos(st))/float64(b.N), st.String()+"-ns/op")
		b.ReportMetric(float64(stages.Allocs(st))/float64(b.N), st.String()+"-allocs/op")
	}
	scans := 0
	for _, t := range res.Targets {
		if _, err := t.Scan(ScanOptions{}); err != nil {
			b.Fatal(err)
		}
		scans++
	}
	if scans > 0 {
		b.ReportMetric(float64(stages.WallNanos(stagetime.Taint))/float64(scans), "taint-ns/scan")
		b.ReportMetric(float64(stages.Allocs(stagetime.Taint))/float64(scans), "taint-allocs/scan")
		// The precision passes run inside each scan, so for them one
		// scan is the op these units are normalized over.
		b.ReportMetric(float64(stages.WallNanos(stagetime.Alias))/float64(scans), "alias-ns/op")
		b.ReportMetric(float64(stages.Allocs(stagetime.Alias))/float64(scans), "alias-allocs/op")
		b.ReportMetric(float64(stages.WallNanos(stagetime.PathCheck))/float64(scans), "pathcheck-ns/op")
		b.ReportMetric(float64(stages.Allocs(stagetime.PathCheck))/float64(scans), "pathcheck-allocs/op")
	}
}

// BenchmarkPipeline_SingleFirmwareCached is the same pipeline behind a warm
// model cache: the first analysis (outside the timed loop) lifts the models,
// the timed iterations reuse them. The cache-hit-% metric reports the
// cache's lifetime hit rate so bench-smoke can track amortization.
func BenchmarkPipeline_SingleFirmwareCached(b *testing.B) {
	samples := benchCorpus(b)
	raw := samples[0].Packed
	opts := DefaultOptions()
	opts.Cache = NewCache(0, 0)
	if _, err := Analyze(raw, opts); err != nil {
		b.Fatal(err) // warm the cache
	}
	b.ResetTimer()
	var res *Result
	var err error
	for i := 0; i < b.N; i++ {
		if res, err = Analyze(raw, opts); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if res.Cache.Lifted != 0 {
		b.Fatalf("warm run lifted %d models, want 0", res.Cache.Lifted)
	}
	b.ReportMetric(100*opts.Cache.Stats().HitRate(), "cache-hit-%")
}

var (
	benchXCorpusOnce sync.Once
	benchXCorpusVal  []CorpusFile
	benchXCorpusErr  error
)

// benchXCorpus generates the multi-binary cross-channel corpus once for the
// corpus benchmarks.
func benchXCorpus(b *testing.B) []CorpusFile {
	b.Helper()
	benchXCorpusOnce.Do(func() {
		x, err := synth.GenerateXCorpus(1)
		if err != nil {
			benchXCorpusErr = err
			return
		}
		for _, f := range x.Files {
			benchXCorpusVal = append(benchXCorpusVal, CorpusFile{Path: f.Path, Data: f.Data})
		}
	})
	if benchXCorpusErr != nil {
		b.Fatalf("xcorpus: %v", benchXCorpusErr)
	}
	return benchXCorpusVal
}

// BenchmarkCrossCorpus_ModeComparison regenerates the cross-binary
// evaluation table: CTS, CTS+ITS and the keyword-seeded cross-binary
// fixpoint scored against the planted corpus flows. The cross-flow recall
// gap is the subsystem's reproduction target.
func BenchmarkCrossCorpus_ModeComparison(b *testing.B) {
	x, err := synth.GenerateXCorpus(1)
	if err != nil {
		b.Fatal(err)
	}
	var rows []eval.XScoreRow
	for i := 0; i < b.N; i++ {
		if rows, err = eval.RunXScore(context.Background(), x); err != nil {
			b.Fatal(err)
		}
	}
	printTable("Cross-binary corpus: mode comparison", eval.FormatXScore(rows))
	last := rows[len(rows)-1]
	b.ReportMetric(100*last.Recall, "cross-recall-%")
	b.ReportMetric(float64(last.CrossTP), "cross-flows-found")
	b.ReportMetric(float64(rows[0].CrossTP+rows[1].CrossTP), "cross-flows-found-baselines")
}

// BenchmarkPipeline_CorpusXScan measures the full cross-binary corpus scan —
// front-end sweep, corpus load, keyword seeding and the channel fixpoint —
// on the synthetic multi-binary corpus. Rounds and cross-alert counts land
// as metrics so bench-smoke catches a fixpoint that stops converging in the
// same number of rounds.
func BenchmarkPipeline_CorpusXScan(b *testing.B) {
	files := benchXCorpus(b)
	b.ResetTimer()
	var rep *CorpusReport
	var err error
	for i := 0; i < b.N; i++ {
		if rep, err = XScan(files, XScanOptions{StringFilter: true}); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(rep.Rounds), "rounds")
	b.ReportMetric(float64(rep.CrossHit), "cross-alerts")
	b.ReportMetric(float64(len(rep.Binaries)), "binaries")
}

// BenchmarkPipeline_CorpusXScanCached is the corpus scan behind a warm
// cache: models, rankings and per-round scan results are all reused, so the
// timed iterations pay only the front-end sweep, decode and the join logic.
func BenchmarkPipeline_CorpusXScanCached(b *testing.B) {
	files := benchXCorpus(b)
	opts := XScanOptions{StringFilter: true, Cache: NewCache(0, 0)}
	if _, err := XScan(files, opts); err != nil {
		b.Fatal(err) // warm the cache
	}
	b.ResetTimer()
	var rep *CorpusReport
	var err error
	for i := 0; i < b.N; i++ {
		if rep, err = XScan(files, opts); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(rep.CrossHit), "cross-alerts")
	b.ReportMetric(100*opts.Cache.Stats().HitRate(), "cache-hit-%")
}

var (
	benchChainOnce sync.Once
	benchChainVal  *synth.Chain
	benchChainErr  error
)

// benchChain generates one evolution chain (two versions, one mutated
// function) for the diff benchmarks.
func benchChain(b *testing.B) *synth.Chain {
	b.Helper()
	benchChainOnce.Do(func() {
		benchChainVal, benchChainErr = synth.GenerateChain(synth.ChainDataset()[0])
	})
	if benchChainErr != nil {
		b.Fatalf("chain: %v", benchChainErr)
	}
	return benchChainVal
}

// BenchmarkPipeline_DiffCold measures an evolution diff with a cold cache
// on every iteration: both versions pay full analysis, alignment runs over
// freshly built models. This is the floor the warm path is measured
// against.
func BenchmarkPipeline_DiffCold(b *testing.B) {
	c := benchChain(b)
	oldRaw, newRaw := c.Versions[0].Packed, c.Versions[1].Packed
	b.ResetTimer()
	var d *DiffResult
	var err error
	for i := 0; i < b.N; i++ {
		opts := DefaultDiffOptions()
		opts.Cache = NewCache(0, 0)
		if d, err = Diff(oldRaw, newRaw, opts); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(d.Report.ReuseRatio, "reuse-ratio")
}

// BenchmarkPipeline_DiffWarm is the same diff behind a warm cache: the
// first diff (outside the timed loop) populates models, vectors, rankings
// and alerts for both versions; the timed iterations replay it with nearly
// everything reused. The reuse-ratio metric lands in BENCH_pipeline.json
// next to the cold number so CI tracks the incremental win.
func BenchmarkPipeline_DiffWarm(b *testing.B) {
	c := benchChain(b)
	oldRaw, newRaw := c.Versions[0].Packed, c.Versions[1].Packed
	opts := DefaultDiffOptions()
	opts.Cache = NewCache(0, 0)
	if _, err := Diff(oldRaw, newRaw, opts); err != nil {
		b.Fatal(err) // warm the cache
	}
	b.ResetTimer()
	var d *DiffResult
	var err error
	for i := 0; i < b.N; i++ {
		if d, err = Diff(oldRaw, newRaw, opts); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if d.Report.ReuseRatio < 0.9 {
		b.Fatalf("warm diff reused only %.2f of functions", d.Report.ReuseRatio)
	}
	b.ReportMetric(d.Report.ReuseRatio, "reuse-ratio")
}

// BenchmarkAnalyzeParallel sweeps the worker count over a fixed slice of the
// corpus and cross-checks that every parallelism level produces the same
// result as the serial run. Each jN variant reports its wall-clock speedup
// over the j1 baseline as the "speedup-x" metric; the number tracks the
// host's core count (a single-core host pins it near 1.0, since the
// pipeline is CPU-bound).
func BenchmarkAnalyzeParallel(b *testing.B) {
	samples := benchCorpus(b)
	subset := samples[:minInt(8, len(samples))]
	// The j1 state is shared across the b.Run sub-benchmarks. The framework
	// may invoke a sub-benchmark's closure several times while ramping b.N
	// toward -benchtime, and a filter like -bench 'Parallel/j4' can skip j1
	// entirely, so: j1 marks itself ran and records the b.N its baseline was
	// measured at — only a re-entry at least as long may overwrite it — and
	// the jN variants compare and report speedup only when j1 actually ran.
	var baseline []comparableResult
	var baseNsPerOp float64
	var baseN int
	j1Ran := false
	for _, j := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("j%d", j), func(b *testing.B) {
			opts := DefaultOptions()
			opts.Parallelism = j
			var results []comparableResult
			for i := 0; i < b.N; i++ {
				results = results[:0]
				for _, s := range subset {
					res, err := AnalyzeContext(context.Background(), s.Packed, opts)
					if err != nil {
						b.Fatal(err)
					}
					results = append(results, normalize(res))
				}
			}
			b.StopTimer()
			nsPerOp := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
			if j == 1 {
				if !j1Ran || b.N >= baseN {
					baseline = append(baseline[:0], results...)
					baseNsPerOp = nsPerOp
					baseN = b.N
					j1Ran = true
				}
			} else if j1Ran {
				if !reflect.DeepEqual(results, baseline) {
					b.Fatalf("result at parallelism %d differs from serial run", j)
				}
				if baseNsPerOp > 0 {
					b.ReportMetric(baseNsPerOp/nsPerOp, "speedup-x")
				}
			}
		})
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// BenchmarkAppendixA_Verification regenerates the Appendix A workflow: every
// inferred top-3 candidate is executed under the emulator against a planted
// request store; confirmed extract-and-return behaviour makes it a usable
// taint source with the return register as taint origin.
func BenchmarkAppendixA_Verification(b *testing.B) {
	samples := benchCorpus(b)
	var checked, confirmed, plantedConfirmed, planted int
	for i := 0; i < b.N; i++ {
		checked, confirmed, plantedConfirmed, planted = 0, 0, 0, 0
		for _, s := range samples {
			res, err := loader.Load(s.Packed, loader.Options{})
			if err != nil {
				continue
			}
			truth := map[uint32]bool{}
			for _, its := range s.Manifest.ITS {
				truth[its.Entry] = true
			}
			planted += len(s.Manifest.ITS)
			for _, t := range res.Targets {
				ranking := infer.InferTarget(t, infer.DefaultConfig())
				for _, c := range ranking.Top(3) {
					checked++
					o := verify.Candidate(t.Bin, t.Model, c.Entry)
					if o.Verified {
						confirmed++
						if truth[c.Entry] {
							plantedConfirmed++
						}
					}
				}
			}
		}
	}
	printTable("Appendix A: dynamic ITS verification", fmt.Sprintf(
		"top-3 candidates checked: %d; dynamically confirmed: %d\n"+
			"planted ITSs: %d; planted ITSs confirmed among top-3: %d\n",
		checked, confirmed, planted, plantedConfirmed))
	b.ReportMetric(float64(confirmed), "confirmed")
	b.ReportMetric(float64(plantedConfirmed), "planted-confirmed")
}
