package fits

// Tests for the parallel pipeline's contract: results are bit-for-bit
// identical at every worker count, cancellation is prompt at target and
// function granularity, and no goroutines outlive an AnalyzeContext call.

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"testing"
	"time"
)

// comparableResult strips the fields that legitimately vary between runs
// (wall-clock time, internal loader handles) so runs can be deep-compared.
type comparableResult struct {
	Vendor, Product, Version string
	Targets                  []comparableTarget
}

type comparableTarget struct {
	Path       string
	Binary     string
	NumFuncs   int
	Candidates []Candidate
}

func normalize(res *Result) comparableResult {
	out := comparableResult{Vendor: res.Vendor, Product: res.Product, Version: res.Version}
	for _, t := range res.Targets {
		out.Targets = append(out.Targets, comparableTarget{
			Path: t.Path, Binary: t.Binary, NumFuncs: t.NumFuncs,
			Candidates: append([]Candidate(nil), t.Candidates...),
		})
	}
	return out
}

// TestAnalyzeDeterministicAcrossParallelism asserts the full Result —
// targets, candidate order, scores — and the subsequent Scan alerts are
// deep-equal at parallelism 1, 2 and 8.
func TestAnalyzeDeterministicAcrossParallelism(t *testing.T) {
	// Sample 42 (Tenda) has many planted bugs, and NETGEAR samples carry a
	// second network binary, exercising multi-target assembly order.
	for _, idx := range []int{0, 42} {
		s := sample(t, idx)
		var base comparableResult
		var baseAlerts [][]Alert
		for _, workers := range []int{1, 2, 8} {
			opts := DefaultOptions()
			opts.Parallelism = workers
			res, err := AnalyzeContext(context.Background(), s.Packed, opts)
			if err != nil {
				t.Fatalf("sample %d workers=%d: %v", idx, workers, err)
			}
			got := normalize(res)
			var alerts [][]Alert
			for _, tgt := range res.Targets {
				var its []uint32
				for _, c := range tgt.TopCandidates(3) {
					its = append(its, c.Entry)
				}
				a, err := tgt.Scan(ScanOptions{Engine: EngineStatic, ITS: its, StringFilter: true})
				if err != nil {
					t.Fatalf("sample %d workers=%d scan: %v", idx, workers, err)
				}
				alerts = append(alerts, a)
			}
			if workers == 1 {
				base, baseAlerts = got, alerts
				continue
			}
			if !reflect.DeepEqual(got, base) {
				t.Errorf("sample %d: result at parallelism %d differs from serial run\nserial: %+v\ngot:    %+v",
					idx, workers, base, got)
			}
			if !reflect.DeepEqual(alerts, baseAlerts) {
				t.Errorf("sample %d: alerts at parallelism %d differ from serial run", idx, workers)
			}
		}
	}
}

// TestAnalyzeContextPreCancelled asserts an already-cancelled context
// returns promptly with ctx.Err() and leaks no goroutines.
func TestAnalyzeContextPreCancelled(t *testing.T) {
	s := sample(t, 0)
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	res, err := AnalyzeContext(ctx, s.Packed, DefaultOptions())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Error("cancelled analysis returned a result")
	}
	if d := time.Since(start); d > time.Second {
		t.Errorf("cancelled analysis took %s", d)
	}
	assertNoGoroutineLeak(t, before)
}

// TestAnalyzeContextDeadline asserts an expired deadline aborts mid-flight
// with DeadlineExceeded and leaks no goroutines.
func TestAnalyzeContextDeadline(t *testing.T) {
	s := sample(t, 0)
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithTimeout(context.Background(), time.Microsecond)
	defer cancel()
	time.Sleep(time.Millisecond) // let the deadline pass
	_, err := AnalyzeContext(ctx, s.Packed, DefaultOptions())
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	assertNoGoroutineLeak(t, before)
}

// assertNoGoroutineLeak is an in-tree goleak-style check: the goroutine
// count must settle back to its pre-call level (small slack for runtime
// housekeeping goroutines).
func assertNoGoroutineLeak(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	var after int
	for time.Now().Before(deadline) {
		after = runtime.NumGoroutine()
		if after <= before+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutine leak: before=%d after=%d", before, after)
}

// TestAnalyzeParallelDefault sanity-checks the default (all-CPU) path on a
// real sample against the serial path.
func TestAnalyzeParallelDefault(t *testing.T) {
	s := sample(t, 1)
	serial := DefaultOptions()
	serial.Parallelism = 1
	want, err := AnalyzeContext(context.Background(), s.Packed, serial)
	if err != nil {
		t.Fatal(err)
	}
	got, err := AnalyzeContext(context.Background(), s.Packed, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(normalize(got), normalize(want)) {
		t.Error("default parallelism result differs from serial run")
	}
}

// TestScanParallelTargets runs Scan concurrently over the targets of one
// analysis to surface engine-level shared state under -race.
func TestScanParallelTargets(t *testing.T) {
	s := sample(t, 42)
	res, err := Analyze(s.Packed, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 2*len(res.Targets))
	for _, tgt := range res.Targets {
		for _, eng := range []Engine{EngineStatic, EngineSymbolic} {
			go func(tr *TargetResult, e Engine) {
				_, err := tr.Scan(ScanOptions{Engine: e, StringFilter: true})
				done <- err
			}(tgt, eng)
		}
	}
	for i := 0; i < 2*len(res.Targets); i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
