package fits

// Tests for the model cache's correctness contract at the public API: with
// or without a cache, cold or warm, at any parallelism, Analyze returns a
// byte-identical Result (diagnostics aside), and warm runs actually reuse
// cached models instead of re-lifting.

import (
	"context"
	"reflect"
	"testing"
)

func TestAnalyzeCachedMatchesUncached(t *testing.T) {
	for _, idx := range []int{0, 42} {
		s := sample(t, idx)
		cache := NewCache(0, 0)
		var base comparableResult
		for _, workers := range []int{1, 2, 4, 8} {
			uncached := DefaultOptions()
			uncached.Parallelism = workers
			plain, err := AnalyzeContext(context.Background(), s.Packed, uncached)
			if err != nil {
				t.Fatalf("sample %d workers=%d uncached: %v", idx, workers, err)
			}
			if plain.Cache.Reused != 0 {
				t.Errorf("sample %d workers=%d: uncached run reports %d reused models",
					idx, workers, plain.Cache.Reused)
			}

			withCache := uncached
			withCache.Cache = cache
			cachedRes, err := AnalyzeContext(context.Background(), s.Packed, withCache)
			if err != nil {
				t.Fatalf("sample %d workers=%d cached: %v", idx, workers, err)
			}

			got := normalize(plain)
			if workers == 1 {
				base = got
			} else if !reflect.DeepEqual(got, base) {
				t.Errorf("sample %d workers=%d: uncached result differs from serial run", idx, workers)
			}
			if !reflect.DeepEqual(normalize(cachedRes), base) {
				t.Errorf("sample %d workers=%d: cached result differs from uncached", idx, workers)
			}

			// Every run after the first sees only warm content: no model may
			// be lifted again.
			if workers > 1 && cachedRes.Cache.Lifted != 0 {
				t.Errorf("sample %d workers=%d: warm run lifted %d models, want 0",
					idx, workers, cachedRes.Cache.Lifted)
			}
			if workers == 1 && cachedRes.Cache.Lifted == 0 {
				t.Errorf("sample %d: cold run reports zero lifted models", idx)
			}
		}
		if s := cache.Stats(); s.Hits == 0 {
			t.Errorf("sample %d: cache saw no hits across the sweep", idx)
		}
	}
}

// TestAnalyzeSharedCacheAcrossImages runs two different samples through one
// cache: distinct content must not collide, and each sample's second pass
// must be served from the cache.
func TestAnalyzeSharedCacheAcrossImages(t *testing.T) {
	cache := NewCache(0, 0)
	for _, idx := range []int{0, 7} {
		s := sample(t, idx)
		opts := DefaultOptions()
		opts.Cache = cache

		cold, err := AnalyzeContext(context.Background(), s.Packed, opts)
		if err != nil {
			t.Fatalf("sample %d cold: %v", idx, err)
		}
		if cold.Cache.Lifted == 0 {
			t.Errorf("sample %d: cold pass lifted no models", idx)
		}
		warm, err := AnalyzeContext(context.Background(), s.Packed, opts)
		if err != nil {
			t.Fatalf("sample %d warm: %v", idx, err)
		}
		if warm.Cache.Lifted != 0 || warm.Cache.Reused == 0 {
			t.Errorf("sample %d: warm pass lifted=%d reused=%d, want 0 lifted",
				idx, warm.Cache.Lifted, warm.Cache.Reused)
		}
		if !reflect.DeepEqual(normalize(cold), normalize(warm)) {
			t.Errorf("sample %d: warm result differs from cold", idx)
		}
	}
}
