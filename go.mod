module fits

go 1.22
