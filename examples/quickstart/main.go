// Quickstart: generate one firmware sample, run ITS inference on it, and
// print the ranked candidates next to the ground truth.
package main

import (
	"fmt"
	"log"

	"fits"
	"fits/internal/synth"
)

func main() {
	log.SetFlags(0)

	// Generate one NETGEAR-profile firmware image (deterministic).
	spec := synth.Dataset()[0]
	sample, err := synth.Generate(spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("firmware: %s %s %s (%d bytes packed, arch %s)\n",
		spec.Vendor, spec.Product, spec.Version, len(sample.Packed), sample.Manifest.Arch)

	// Run the full pipeline: carve + decrypt + select + model + infer.
	res, err := fits.Analyze(sample.Packed, fits.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	truth := map[uint32]string{}
	for _, its := range sample.Manifest.ITS {
		truth[its.Entry] = its.FuncName
	}
	for _, t := range res.Targets {
		fmt.Printf("\ntarget %s: %d custom functions, analyzed in %s\n",
			t.Path, t.NumFuncs, res.Elapsed.Round(1e6))
		for i, c := range t.TopCandidates(5) {
			marker := ""
			if name, ok := truth[c.Entry]; ok {
				marker = "  <= planted ITS " + name
			}
			fmt.Printf("  %d. %#x  score %.4f%s\n", i+1, c.Entry, c.Score, marker)
		}
	}
}
