// Rehost: the Appendix-A verification workflow on one firmware — infer ITS
// candidates statically, then execute each top candidate under the
// instruction-level emulator against a planted request store to confirm
// which ones really fetch-and-return user data (and are therefore safe to
// seed as taint sources).
package main

import (
	"fmt"
	"log"

	"fits/internal/infer"
	"fits/internal/loader"
	"fits/internal/synth"
	"fits/internal/verify"
)

func main() {
	log.SetFlags(0)

	spec := synth.Dataset()[2] // a NETGEAR sample
	sample, err := synth.Generate(spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("firmware: %s %s %s\n", spec.Vendor, spec.Product, spec.Version)

	res, err := loader.Load(sample.Packed, loader.Options{})
	if err != nil {
		log.Fatal(err)
	}

	truth := map[uint32]string{}
	for _, its := range sample.Manifest.ITS {
		truth[its.Entry] = its.FuncName
	}

	for _, target := range res.Targets {
		ranking := infer.InferTarget(target, infer.DefaultConfig())
		fmt.Printf("\n%s: verifying the top-5 candidates under emulation\n", target.Path)
		for i, c := range ranking.Top(5) {
			o := verify.Candidate(target.Bin, target.Model, c.Entry)
			status := "rejected"
			detail := ""
			if o.Verified {
				status = "CONFIRMED"
				detail = fmt.Sprintf(" (returned %q, taint origin %s)", o.Returned, o.TaintOrigin)
			} else if o.Err != nil {
				detail = " (" + o.Err.Error() + ")"
			}
			planted := ""
			if name, ok := truth[c.Entry]; ok {
				planted = "  <= planted ITS " + name
			}
			fmt.Printf("  %d. %#x score %.3f: %-9s%s%s\n", i+1, c.Entry, c.Score, status, detail, planted)
		}
	}

	fmt.Println("\nConfirmed candidates extract a keyed field from a caller-supplied")
	fmt.Println("store and pass it out — the behaviour that makes a taint source.")
	fmt.Println("Note the confirmed non-planted entries: configuration fetchers that")
	fmt.Println("share the capability but read system data, which only runtime")
	fmt.Println("context can tell apart (the paper's manual verification step).")
}
