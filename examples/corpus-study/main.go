// Corpus-study: regenerate the paper's headline result (Table 3) over the
// full 59-sample dataset — per-vendor top-1/2/3 inference precision — plus
// the RQ1 BootStomp comparison.
package main

import (
	"fmt"
	"log"

	"fits/internal/eval"
	"fits/internal/infer"
	"fits/internal/synth"
)

func main() {
	log.SetFlags(0)

	fmt.Println("generating the 59-sample corpus...")
	samples, err := synth.GenerateCorpus()
	if err != nil {
		log.Fatal(err)
	}
	bugs := 0
	for _, s := range samples {
		bugs += s.Manifest.TrueBugs()
	}
	fmt.Printf("%d samples, %d planted bugs\n\n", len(samples), bugs)

	results := eval.RunInferenceCorpus(samples, infer.DefaultConfig())
	fmt.Println("Table 3 — ITS inference precision:")
	fmt.Println(eval.FormatTable3(eval.Table3(results)))

	proposed, correct := eval.BootStompBaseline(samples)
	fmt.Printf("BootStomp keyword baseline: proposals in %d/%d firmware, correct sources: %d\n",
		proposed, len(samples), correct)

	misses := 0
	for _, r := range results {
		if !r.TopN(3) {
			misses++
		}
	}
	fmt.Printf("\n%d samples missed top-3 (engineered failures: 6).\n", misses)
}
