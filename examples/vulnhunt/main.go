// Vulnhunt: the end-to-end vulnerability workflow of the paper's RQ2 on one
// firmware sample — run the static engine with classical sources only, then
// again with inferred intermediate sources, and diff what each finds against
// the generator's ground truth.
package main

import (
	"fmt"
	"log"

	"fits"
	"fits/internal/synth"
)

func main() {
	log.SetFlags(0)

	// A Tenda-profile sample: many planted bugs at graded call depths.
	var spec synth.SampleSpec
	for _, s := range synth.Dataset() {
		if s.Vendor == "Tenda" && !s.Latest && s.FailureMode == "" {
			spec = s
			break
		}
	}
	sample, err := synth.Generate(spec)
	if err != nil {
		log.Fatal(err)
	}
	man := sample.Manifest
	fmt.Printf("firmware: %s %s — %d planted bugs\n", man.Vendor, man.Product, man.TrueBugs())

	res, err := fits.Analyze(sample.Packed, fits.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	target := res.Targets[0]

	classify := func(alerts []fits.Alert) (tp, fp int) {
		for _, a := range alerts {
			h, ok := man.HandlerBySink(target.Binary, a.Func)
			if ok && h.Category.Vulnerable() {
				tp++
			} else {
				fp++
			}
		}
		return
	}

	// Pass 1: classical sources only.
	ctsAlerts, err := target.Scan(fits.ScanOptions{Engine: fits.EngineStatic, StringFilter: true})
	if err != nil {
		log.Fatal(err)
	}
	tp, fp := classify(ctsAlerts)
	fmt.Printf("\nSTA with classical sources:     %2d alerts (%d bugs, %d false positives)\n",
		len(ctsAlerts), tp, fp)

	// Pass 2: seed the verified top-3 inferred sources.
	truth := map[uint32]bool{}
	for _, its := range man.ITS {
		truth[its.Entry] = true
	}
	var its []uint32
	for _, c := range target.TopCandidates(3) {
		if truth[c.Entry] { // "manual verification" via the manifest oracle
			its = append(its, c.Entry)
		}
	}
	fmt.Printf("verified ITSs in top-3: %d\n", len(its))

	itsAlerts, err := target.Scan(fits.ScanOptions{
		Engine: fits.EngineStatic, ITS: its, StringFilter: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	tp2, fp2 := classify(itsAlerts)
	fmt.Printf("STA with intermediate sources:  %2d alerts (%d bugs, %d false positives)\n",
		len(itsAlerts), tp2, fp2)
	fmt.Printf("\nITSs surfaced %d additional bugs on this firmware.\n", tp2-tp)

	for _, a := range itsAlerts {
		h, ok := man.HandlerBySink(target.Binary, a.Func)
		status := "FP"
		detail := ""
		if ok {
			detail = " " + h.Category.String()
			if h.Category.Vulnerable() {
				status = "BUG"
				detail += " key=" + h.Key
			}
		}
		fmt.Printf("  [%s] %s at %#x via %s%s\n", status, a.Sink, a.Site, a.Source, detail)
	}
}
