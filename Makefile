# Development and CI entry points. `make ci` is the full gate: vet, the
# fitslint invariant suite, build, plain tests, race-enabled tests, a short
# fuzz smoke on each fuzz target (go's -fuzz flag accepts a single package,
# hence one invocation per target), and a 20-iteration benchmark smoke that
# gates ns/op and allocs/op against the committed BENCH_pipeline.json
# before replacing it.

GO      ?= go
FUZZTIME ?= 10s

.PHONY: all build vet lint test race bench bench-smoke fuzz-smoke serve-smoke precision-smoke ci

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# fitslint machine-checks the repo's determinism, concurrency, and context
# invariants (see DESIGN.md "Static analysis & invariants"). Kept separate
# from vet so the two gates stay independently runnable.
lint:
	$(GO) run ./cmd/fitslint ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run='^$$' -bench=. -benchmem .

# Twenty iterations of the end-to-end pipeline benchmarks (cold, cache-warm
# and diff), converted to JSON and gated against the committed baseline:
# benchjson -compare exits nonzero when ns/op or allocs/op grew beyond the
# tolerance (warn-only across different CPUs), and only then does the fresh
# report replace BENCH_pipeline.json. benchjson itself refuses
# single-iteration samples, so the archive can't silently degrade to
# -benchtime=1x noise.
bench-smoke:
	$(GO) test -run='^$$' -bench='^BenchmarkPipeline_' -benchtime=20x -benchmem . \
		| $(GO) run ./cmd/benchjson > BENCH_new.json
	$(GO) run ./cmd/benchjson -compare BENCH_pipeline.json BENCH_new.json -tolerance 25
	mv BENCH_new.json BENCH_pipeline.json
	@cat BENCH_pipeline.json

# Precision scoreboard: scores the alias + path-feasibility passes against
# the baseline engine on planted ground truth across the three synth
# families and fails unless the full configuration is strictly more precise
# at no loss of recall (see eval.RunPrecision / eval.CheckPrecision).
precision-smoke:
	$(GO) run ./cmd/precision

# End-to-end smoke of the fitsd service: boot the daemon, submit a
# generated firmware image twice via fitsctl, assert identical results, a
# model-cache hit in /metrics, and a clean SIGTERM drain.
serve-smoke:
	GO=$(GO) sh ./scripts/serve_smoke.sh

fuzz-smoke:
	$(GO) test -run='^$$' -fuzz=FuzzDecode -fuzztime=$(FUZZTIME) ./internal/binimg
	$(GO) test -run='^$$' -fuzz=FuzzEncodeDecodeRoundTrip -fuzztime=$(FUZZTIME) ./internal/binimg
	$(GO) test -run='^$$' -fuzz=FuzzLoad -fuzztime=$(FUZZTIME) ./internal/loader
	$(GO) test -run='^$$' -fuzz=FuzzDiff -fuzztime=$(FUZZTIME) .
	$(GO) test -run='^$$' -fuzz=FuzzDiskStore -fuzztime=$(FUZZTIME) ./internal/diskstore
	$(GO) test -run='^$$' -fuzz=FuzzFrontend -fuzztime=$(FUZZTIME) ./internal/frontend

ci: vet lint build test race fuzz-smoke precision-smoke bench-smoke serve-smoke
