# Development and CI entry points. `make ci` is the full gate: vet, build,
# plain tests, race-enabled tests, and a short fuzz smoke on each fuzz target
# (go's -fuzz flag accepts a single package, hence one invocation per target).

GO      ?= go
FUZZTIME ?= 10s

.PHONY: all build vet test race bench fuzz-smoke ci

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run='^$$' -bench=. -benchmem .

fuzz-smoke:
	$(GO) test -run='^$$' -fuzz=FuzzDecode -fuzztime=$(FUZZTIME) ./internal/binimg
	$(GO) test -run='^$$' -fuzz=FuzzEncodeDecodeRoundTrip -fuzztime=$(FUZZTIME) ./internal/binimg
	$(GO) test -run='^$$' -fuzz=FuzzLoad -fuzztime=$(FUZZTIME) ./internal/loader

ci: vet build test race fuzz-smoke
