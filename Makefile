# Development and CI entry points. `make ci` is the full gate: vet, the
# fitslint invariant suite, build, plain tests, race-enabled tests, a short
# fuzz smoke on each fuzz target (go's -fuzz flag accepts a single package,
# hence one invocation per target), and a one-iteration benchmark smoke that
# archives pipeline numbers to BENCH_pipeline.json.

GO      ?= go
FUZZTIME ?= 10s

.PHONY: all build vet lint test race bench bench-smoke fuzz-smoke serve-smoke ci

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# fitslint machine-checks the repo's determinism, concurrency, and context
# invariants (see DESIGN.md "Static analysis & invariants"). Kept separate
# from vet so the two gates stay independently runnable.
lint:
	$(GO) run ./cmd/fitslint ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run='^$$' -bench=. -benchmem .

# One iteration of the end-to-end pipeline benchmarks (cold and cache-warm),
# converted to JSON so CI can diff ns/op, allocs/op, and cache hit rate.
bench-smoke:
	$(GO) test -run='^$$' -bench='^BenchmarkPipeline_' -benchtime=1x -benchmem . \
		| $(GO) run ./cmd/benchjson > BENCH_pipeline.json
	@cat BENCH_pipeline.json

# End-to-end smoke of the fitsd service: boot the daemon, submit a
# generated firmware image twice via fitsctl, assert identical results, a
# model-cache hit in /metrics, and a clean SIGTERM drain.
serve-smoke:
	GO=$(GO) sh ./scripts/serve_smoke.sh

fuzz-smoke:
	$(GO) test -run='^$$' -fuzz=FuzzDecode -fuzztime=$(FUZZTIME) ./internal/binimg
	$(GO) test -run='^$$' -fuzz=FuzzEncodeDecodeRoundTrip -fuzztime=$(FUZZTIME) ./internal/binimg
	$(GO) test -run='^$$' -fuzz=FuzzLoad -fuzztime=$(FUZZTIME) ./internal/loader
	$(GO) test -run='^$$' -fuzz=FuzzDiff -fuzztime=$(FUZZTIME) .

ci: vet lint build test race fuzz-smoke bench-smoke serve-smoke
