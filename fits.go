// Package fits is a Go reproduction of FITS — inFerring Intermediate Taint
// Sources — from "FITS: Inferring Intermediate Taint Sources for Effective
// Vulnerability Analysis of IoT Device Firmware" (ASPLOS '23).
//
// FITS ranks the custom functions of stripped firmware binaries as
// intermediate taint sources (ITSs): functions that fetch a field of stored
// user input and hand it onward. Starting taint analysis at an ITS instead
// of at interface library functions shortens the data-flow paths to sinks
// dramatically, which is what makes static vulnerability discovery on large
// closed-source firmware tractable.
//
// The package exposes the complete pipeline:
//
//	result, err := fits.Analyze(firmwareBytes, fits.DefaultOptions())
//	for _, t := range result.Targets {
//	    for i, c := range t.TopCandidates(3) {
//	        fmt.Printf("%d. %#x score %.3f\n", i+1, c.Entry, c.Score)
//	    }
//	}
//
// Everything the pipeline rests on is implemented in internal packages: the
// firmware container and unpacker, a three-architecture instruction set and
// loader, an IR lifter, CFG/call-graph recovery with under-constrained
// symbolic execution, reaching-definition and call-site dataflow, DBSCAN
// clustering, similarity scoring, and two taint engines (a static
// reachability engine and a budgeted symbolic-execution engine) for the
// paper's vulnerability-discovery evaluation.
package fits

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"time"

	"fits/internal/infer"
	"fits/internal/intern"
	"fits/internal/karonte"
	"fits/internal/know"
	"fits/internal/loader"
	"fits/internal/modelcache"
	"fits/internal/pool"
	"fits/internal/score"
	"fits/internal/stagetime"
	"fits/internal/taint"
)

// StageTimer accumulates per-stage wall-clock and allocation costs of one
// analysis or a whole corpus batch (decode, lift, cfg, reachdef, infer,
// taint); see Options.Stages. The zero value is ready to use.
type StageTimer = stagetime.Timer

// Scheduler is a shared bounded worker budget. One Scheduler handed to many
// analyses (Options.Scheduler, AnalyzeCorpus) bounds their combined
// goroutines instead of each call sizing its own fan-out; nested fan-outs
// never deadlock (the calling goroutine always runs items itself).
type Scheduler = pool.Scheduler

// NewScheduler returns a scheduler bounding concurrent analysis work to
// `workers` goroutines (<= 0 means runtime.GOMAXPROCS(0)).
func NewScheduler(workers int) *Scheduler { return pool.NewScheduler(workers) }

// Cache is a content-addressed, concurrency-safe cache of loaded binary
// models and derived feature vectors, keyed by the SHA-256 of the binary
// bytes plus the analysis configuration. One Cache may back any number of
// concurrent Analyze calls; repeated analyses of firmware images sharing
// binaries (vendor families, version sweeps) skip re-lifting shared content.
type Cache = modelcache.Cache

// CacheStats reports the cache counters; see Cache.Stats.
type CacheStats = modelcache.Stats

// NewCache returns a cache bounded to at most maxEntries cached artifacts
// and approximately maxBytes of resident model memory (least recently used
// entries are evicted first). Zero selects the defaults (4096 entries, 1
// GiB).
func NewCache(maxEntries int, maxBytes int64) *Cache {
	return modelcache.New(maxEntries, maxBytes)
}

// Options configures Analyze.
type Options struct {
	// Metric selects the similarity metric (default cosine).
	Metric score.Metric
	// SkipIndirectResolution disables UCSE-based indirect call resolution.
	SkipIndirectResolution bool
	// Parallelism bounds the worker goroutines at every fan-out layer of
	// the pipeline (per-binary model building, per-target inference,
	// per-function feature extraction). 0 means runtime.GOMAXPROCS(0); 1
	// runs the pipeline serially. The result is byte-identical at every
	// setting.
	Parallelism int
	// Cache, when non-nil, memoizes decoded binaries, whole-binary models
	// and per-target feature vectors across Analyze calls. Results are
	// byte-identical with and without a cache; only Elapsed and the
	// CacheInfo diagnostics differ.
	Cache *Cache
	// Scheduler, when non-nil, draws every fan-out of this analysis from a
	// shared worker budget instead of sizing per-call pools from
	// Parallelism. AnalyzeCorpus sets it to batch images; long-running
	// services share one across jobs. Results are byte-identical either way.
	Scheduler *Scheduler
	// Stages, when non-nil, accumulates this analysis's per-stage wall and
	// allocation costs (decode, lift, cfg, reachdef, infer, taint). Purely
	// diagnostic: results are unaffected. Allocation attribution is exact
	// only at Parallelism 1; wall times sum across workers.
	Stages *StageTimer
	// intern is the per-analysis string intern table. Analyze creates one
	// per call; AnalyzeCorpus shares one across the batch so names repeated
	// between images collapse too. Interning never changes output bytes.
	intern *intern.Table
	// prev threads the previous firmware version's targets into the loader
	// so unchanged functions are replayed instead of rebuilt; set by Diff.
	prev []*loader.Target
}

// DefaultOptions returns the paper's configuration.
func DefaultOptions() Options { return Options{Metric: score.Cosine} }

// inferConfig maps analysis options onto the inference pipeline's
// configuration.
func inferConfig(opts Options, workers int) infer.Config {
	cfgn := infer.DefaultConfig()
	cfgn.Metric = opts.Metric
	cfgn.Parallelism = workers
	cfgn.Cache = opts.Cache
	cfgn.Sched = opts.Scheduler
	cfgn.Intern = opts.intern
	if st := opts.Stages; st != nil {
		cfgn.Clock = stagetime.Clock
		cfgn.AllocCount = stagetime.AllocCount
		cfgn.OnReachDef = func(wallNanos, allocObjs int64) {
			st.Add(stagetime.ReachDef, wallNanos)
			st.AddAllocs(stagetime.ReachDef, allocObjs)
		}
	}
	return cfgn
}

// Candidate is one ranked intermediate-taint-source candidate.
type Candidate struct {
	Entry uint32
	Score float64
}

// TargetResult is the inference outcome for one network binary.
type TargetResult struct {
	Path       string // filesystem path within the firmware
	Binary     string
	NumFuncs   int
	Candidates []Candidate // descending score

	target *loader.Target
	// Scan memoization context: the cache the analysis ran with, the
	// target's content hash, and the model configuration label. Zero values
	// disable alert caching.
	cache    *Cache
	hash     modelcache.Hash
	modelCfg string
	// stages carries the analysis's stage timer into Scan so taint-engine
	// time lands in the same Timer as the inference stages; nil disables.
	stages *StageTimer
	// prec memoizes the precision passes' pure per-function results, so
	// repeated Scan calls on one target don't recompute them.
	prec *taint.PrecisionCache
}

// TopCandidates returns the k best-ranked candidates.
func (t *TargetResult) TopCandidates(k int) []Candidate {
	if k > len(t.Candidates) {
		k = len(t.Candidates)
	}
	return t.Candidates[:k]
}

// CacheInfo summarizes model reuse during one analysis. Lifted counts
// whole-binary models built fresh; Reused counts models served from the
// cache (always zero without one). Stats snapshots the cache's lifetime
// counters after the analysis.
type CacheInfo struct {
	Lifted int
	Reused int
	Stats  CacheStats
}

// Result is the outcome of analyzing one firmware image.
type Result struct {
	Vendor  string
	Product string
	Version string
	Targets []*TargetResult
	Elapsed time.Duration
	// Cache reports model reuse; diagnostic only and excluded from
	// determinism comparisons, like Elapsed.
	Cache CacheInfo
}

// Analyze unpacks a firmware image, selects its network binaries, and ranks
// their custom functions as intermediate taint sources.
func Analyze(raw []byte, opts Options) (*Result, error) {
	return AnalyzeContext(context.Background(), raw, opts)
}

// AnalyzeContext is Analyze with cancellation and bounded parallelism: model
// building, per-target inference and per-function feature extraction fan out
// across opts.Parallelism workers, and the context is checked at target and
// function granularity, so scanning a large image can be aborted mid-flight
// (the error is then ctx.Err()). Targets are assembled in input order and
// every ranking carries explicit deterministic sort keys, so the Result is
// byte-identical — Elapsed aside — at every worker count.
func AnalyzeContext(ctx context.Context, raw []byte, opts Options) (*Result, error) {
	start := time.Now()
	workers := opts.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if opts.intern == nil {
		opts.intern = intern.NewTable()
	}
	res, err := loader.LoadContext(ctx, raw, loader.Options{
		SkipResolver: opts.SkipIndirectResolution,
		Parallelism:  workers,
		Cache:        opts.Cache,
		Prev:         opts.prev,
		Sched:        opts.Scheduler,
		Intern:       opts.intern,
		Stages:       opts.Stages,
	})
	if err != nil {
		return nil, err
	}
	cfgn := inferConfig(opts, workers)
	out := &Result{
		Vendor:  res.Image.Vendor,
		Product: res.Image.Product,
		Version: res.Image.Version,
		Targets: make([]*TargetResult, len(res.Targets)),
	}
	inferDone := opts.Stages.Span(stagetime.Infer)
	inferJob := func(i int) error {
		t := res.Targets[i]
		r, err := infer.InferTargetContext(ctx, t, cfgn)
		if err != nil {
			return err
		}
		tr := &TargetResult{
			Path: t.Path, Binary: r.Binary, NumFuncs: r.NumFuncs,
			target: t, cache: opts.Cache, hash: t.Hash, modelCfg: t.ModelConfig,
			stages: opts.Stages,
			prec:   new(taint.PrecisionCache),
		}
		for _, e := range r.Ranked {
			tr.Candidates = append(tr.Candidates, Candidate{Entry: e.Entry, Score: e.Score})
		}
		out.Targets[i] = tr
		return nil
	}
	if opts.Scheduler != nil {
		err = opts.Scheduler.ForEach(ctx, len(res.Targets), inferJob)
	} else {
		err = pool.ForEach(ctx, workers, len(res.Targets), inferJob)
	}
	inferDone()
	if err != nil {
		return nil, err
	}
	out.Elapsed = time.Since(start)
	out.Cache = CacheInfo{Lifted: res.Lifted, Reused: res.Reused}
	if opts.Cache != nil {
		out.Cache.Stats = opts.Cache.Stats()
	}
	return out, nil
}

// AnalyzeCorpus analyzes a batch of firmware images under one shared worker
// budget, intern table, cache and stage timer: image A's model building and
// image B's feature extraction draw from the same scheduler instead of each
// call sizing its own fan-out, and strings repeated across images are
// interned once. Results[i] corresponds to images[i] and is byte-identical
// to Analyze(images[i], opts) at every worker count; the error of the
// lowest-indexed failing image aborts the batch. Supplying opts.Scheduler
// lets several corpus calls (or a service's jobs) share one budget; without
// one the batch gets its own, sized from opts.Parallelism.
func AnalyzeCorpus(ctx context.Context, images [][]byte, opts Options) ([]*Result, error) {
	if opts.Scheduler == nil {
		opts.Scheduler = NewScheduler(opts.Parallelism)
	}
	if opts.intern == nil {
		opts.intern = intern.NewTable()
	}
	out := make([]*Result, len(images))
	err := opts.Scheduler.ForEach(ctx, len(images), func(i int) error {
		r, err := AnalyzeContext(ctx, images[i], opts)
		if err != nil {
			return fmt.Errorf("fits: image %d: %w", i, err)
		}
		out[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Engine selects a taint analysis engine for Scan.
type Engine uint8

// Engines: the static reachability engine (STA) and the budgeted
// symbolic-execution engine (Karonte-style).
const (
	EngineStatic Engine = iota
	EngineSymbolic
)

// Alert is one reported potentially-vulnerable flow.
type Alert struct {
	Binary string
	Site   uint32 // sink call instruction address
	Func   uint32 // entry of the function containing the sink
	Sink   string
	Kind   string // "buffer-overflow" or "command-hijack"
	Source string // "cts-region", "cts-value" or "its"
	// Degraded marks alerts from functions where an analysis budget
	// tripped (dataflow fixpoint or alias facts): precision around them
	// fell back to the coarser passes.
	Degraded bool
}

// ScanOptions configures a taint scan.
type ScanOptions struct {
	Engine Engine
	// ITS lists the intermediate taint sources to seed, typically verified
	// entries from TopCandidates. Empty means classical sources only.
	ITS []uint32
	// ITSOut lists pointer-output sources: function entry to the output
	// parameter indexes whose pointees carry the fetched data.
	ITSOut map[uint32][]int
	// StringFilter drops alerts keyed on system-data fields (static
	// engine only).
	StringFilter bool
	// NoAlias disables the bounded points-to pass; NoPathcheck disables
	// the path-feasibility pass (both static-engine only, on by default).
	NoAlias     bool
	NoPathcheck bool
}

// Scan runs taint analysis over one analyzed target.
func (t *TargetResult) Scan(opts ScanOptions) ([]Alert, error) {
	return t.ScanContext(context.Background(), opts)
}

// ScanContext is Scan with cancellation. Both engines are internally
// budgeted, so a single run is bounded; the context is checked before the
// engine starts and again before alerts are materialized, which is the
// granularity long-running services (fitsd) cancel at. Alerts are returned
// in a fully deterministic order (site, function, sink, kind, source), so
// repeated scans of one target are byte-identical. When the analysis ran
// with a cache, the alert list is memoized on the target's content hash and
// the full scan configuration, so re-scanning an unchanged binary — the
// common case when diffing firmware versions — is a lookup.
func (t *TargetResult) ScanContext(ctx context.Context, opts ScanOptions) ([]Alert, error) {
	if t.target == nil {
		return nil, fmt.Errorf("fits: target was not produced by Analyze")
	}
	if t.cache == nil || t.hash == (modelcache.Hash{}) {
		return t.scan(ctx, opts)
	}
	key := modelcache.Key("alerts", scanSig(t.modelCfg, opts), t.hash)
	v, _, err := t.cache.GetOrCompute(key, func() (any, int64, error) {
		alerts, err := t.scan(ctx, opts)
		if err != nil {
			return nil, 0, err
		}
		return alerts, int64(len(alerts))*96 + 64, nil
	})
	if err != nil {
		return nil, err
	}
	base := v.([]Alert)
	return append(make([]Alert, 0, len(base)), base...), nil
}

// scanSig serializes everything a scan's outcome depends on besides the
// binary's bytes: model configuration, engine, the seeded sources, and the
// filter. ITS entries are sorted (the engines treat them as a set); ITSOut
// keys are sorted with their index lists kept in caller order.
func scanSig(modelCfg string, opts ScanOptions) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "model=%s|engine=%d|sf=%t|noalias=%t|nopathcheck=%t|its=",
		modelCfg, opts.Engine, opts.StringFilter, opts.NoAlias, opts.NoPathcheck)
	its := append(make([]uint32, 0, len(opts.ITS)), opts.ITS...)
	sort.Slice(its, func(i, j int) bool { return its[i] < its[j] })
	for _, e := range its {
		fmt.Fprintf(&sb, "%x,", e)
	}
	sb.WriteString("|itsout=")
	outs := make([]uint32, 0, len(opts.ITSOut))
	for e := range opts.ITSOut {
		outs = append(outs, e)
	}
	sort.Slice(outs, func(i, j int) bool { return outs[i] < outs[j] })
	for _, e := range outs {
		fmt.Fprintf(&sb, "%x:%v,", e, opts.ITSOut[e])
	}
	return sb.String()
}

func (t *TargetResult) scan(ctx context.Context, opts ScanOptions) ([]Alert, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	defer t.stages.Span(stagetime.Taint)()
	var raw []taint.Alert
	switch opts.Engine {
	case EngineSymbolic:
		e := karonte.New(t.target.Bin, t.target.Model, karonte.Options{
			UseCTS: true, ITS: opts.ITS, ITSOut: opts.ITSOut,
		})
		raw = e.Run()
	default:
		topts := taint.Options{
			UseCTS: true, ITS: opts.ITS, ITSOut: opts.ITSOut,
			StringFilter: opts.StringFilter,
			NoAlias:      opts.NoAlias, NoPathcheck: opts.NoPathcheck,
			Precision:    t.prec,
		}
		if t.stages != nil {
			st := t.stages
			topts.Clock = stagetime.Clock
			topts.AllocCount = stagetime.AllocCount
			topts.OnAlias = func(ns, allocs int64) {
				st.Add(stagetime.Alias, ns)
				st.AddAllocs(stagetime.Alias, allocs)
			}
			topts.OnPathcheck = func(ns, allocs int64) {
				st.Add(stagetime.PathCheck, ns)
				st.AddAllocs(stagetime.PathCheck, allocs)
			}
		}
		e := taint.New(t.target.Bin, t.target.Model, topts)
		raw = e.Run()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	out := make([]Alert, 0, len(raw))
	for _, a := range raw {
		out = append(out, Alert{
			Binary: a.Binary, Site: a.Site, Func: a.Func,
			Sink: a.Sink, Kind: a.Kind.String(), Source: a.From.String(),
			Degraded: a.Degraded,
		})
	}
	return out, nil
}

// Sinks returns the sink library functions recognized by the engines,
// sorted by name.
func Sinks() []string {
	out := make([]string, 0, len(know.Sinks))
	for name := range know.Sinks {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Sources returns the classical taint source functions recognized by the
// engines, sorted by name.
func Sources() []string {
	out := make([]string, 0, len(know.Sources))
	for name := range know.Sources {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Anchors returns the anchor function names used for behavioral scoring,
// sorted by name.
func Anchors() []string {
	out := make([]string, 0, len(know.Anchors))
	for name := range know.Anchors {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
