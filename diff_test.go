package fits

// Tests for the evolution diff pipeline. The differential harness asserts
// the correctness contract — a Diff's new-side results are byte-identical to
// a cold analysis of the new image at every parallelism, cache state and
// chain — and the churn tests score DiffReport against the chains'
// ground-truth evolution manifests.

import (
	"context"
	"reflect"
	"sync"
	"testing"

	"fits/internal/evolve"
	"fits/internal/synth"
)

var (
	chainMu    sync.Mutex
	chainMemo  = map[int64]*synth.Chain{}
	chainMemoE = map[int64]error{}
)

func chainFor(t *testing.T, spec synth.ChainSpec) *synth.Chain {
	t.Helper()
	chainMu.Lock()
	defer chainMu.Unlock()
	if c, ok := chainMemo[spec.Seed]; ok {
		return c
	}
	if err := chainMemoE[spec.Seed]; err != nil {
		t.Fatal(err)
	}
	c, err := synth.GenerateChain(spec)
	if err != nil {
		chainMemoE[spec.Seed] = err
		t.Fatal(err)
	}
	chainMemo[spec.Seed] = c
	return c
}

// coldTruth analyzes an image from scratch — serial, uncached — and scans it
// exactly as Diff does, producing the reference the incremental path must
// reproduce bit for bit.
func coldTruth(t *testing.T, raw []byte, opts DiffOptions) (comparableResult, [][]Alert) {
	t.Helper()
	plain := opts.Options
	plain.Cache = nil
	plain.Parallelism = 1
	res, err := AnalyzeContext(context.Background(), raw, plain)
	if err != nil {
		t.Fatal(err)
	}
	alerts := make([][]Alert, len(res.Targets))
	for i, tr := range res.Targets {
		var its []uint32
		for _, c := range tr.TopCandidates(opts.TopK) {
			its = append(its, c.Entry)
		}
		a, err := tr.Scan(ScanOptions{Engine: opts.Engine, ITS: its, StringFilter: opts.StringFilter})
		if err != nil {
			t.Fatal(err)
		}
		alerts[i] = a
	}
	return normalize(res), alerts
}

// TestDiffMatchesColdAnalysis is the differential harness: for every
// version pair of every chain, at parallelism 1, 2, 4 and 8, with the cache
// cold and warm, the diff's new-side analysis and alerts must deep-equal a
// cold run, and the warm pass must reproduce the cold pass's report.
func TestDiffMatchesColdAnalysis(t *testing.T) {
	for _, spec := range synth.ChainDataset() {
		c := chainFor(t, spec)
		for vi := 0; vi+1 < len(c.Versions); vi++ {
			opts := DefaultDiffOptions()
			opts.TopK = 3
			wantNorm, wantAlerts := coldTruth(t, c.Versions[vi+1].Packed, opts)
			for _, workers := range []int{1, 2, 4, 8} {
				opts := DefaultDiffOptions()
				opts.Parallelism = workers
				opts.Cache = NewCache(0, 0)
				var firstReport *evolve.DiffReport
				for _, pass := range []string{"cold", "warm"} {
					d, err := DiffContext(context.Background(), c.Versions[vi].Packed, c.Versions[vi+1].Packed, opts)
					if err != nil {
						t.Fatalf("seed %d v%d->v%d workers=%d %s: %v", spec.Seed, vi, vi+1, workers, pass, err)
					}
					if got := normalize(d.New); !reflect.DeepEqual(got, wantNorm) {
						t.Errorf("seed %d v%d->v%d workers=%d %s: incremental analysis differs from cold run\ncold: %+v\ngot:  %+v",
							spec.Seed, vi, vi+1, workers, pass, wantNorm, got)
					}
					if !reflect.DeepEqual(d.NewAlerts, wantAlerts) {
						t.Errorf("seed %d v%d->v%d workers=%d %s: incremental alerts differ from cold run",
							spec.Seed, vi, vi+1, workers, pass)
					}
					if pass == "cold" {
						firstReport = d.Report
					} else if !reflect.DeepEqual(d.Report, firstReport) {
						t.Errorf("seed %d v%d->v%d workers=%d: warm report differs from cold report",
							spec.Seed, vi, vi+1, workers)
					}
				}
			}
		}
	}
}

// churnKey identifies an alert for ground-truth comparison: the binary, the
// entry of the function containing the sink call, and the sink.
type churnKey struct {
	Binary string
	Func   uint32
	Sink   string
}

// expectedChurn maps a step's expected alerts onto concrete sink-function
// entries via the manifest of the version the alerts exist in.
func expectedChurn(t *testing.T, m *synth.Manifest, want []synth.ExpectedAlert) map[churnKey]bool {
	t.Helper()
	out := map[churnKey]bool{}
	for _, e := range want {
		found := false
		for _, h := range m.Handlers {
			if h.Binary == e.Binary && h.SinkFuncName == e.SinkFuncName {
				out[churnKey{Binary: e.Binary, Func: h.SinkEntry, Sink: e.Sink}] = true
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("expected alert %+v not resolvable in manifest", e)
		}
	}
	return out
}

func reportChurn(r *evolve.DiffReport, pick func(td *evolve.TargetDiff) []evolve.Alert) map[churnKey]bool {
	out := map[churnKey]bool{}
	for i := range r.Targets {
		for _, a := range pick(&r.Targets[i]) {
			out[churnKey{Binary: a.Binary, Func: a.Func, Sink: a.Sink}] = true
		}
	}
	return out
}

// TestDiffChurnMatchesChains scores every chain step's DiffReport against
// the ground-truth evolution manifest: appeared and fixed alerts match
// exactly, renames are recovered through the similarity fallback, the ITS
// set is stable except (at most) across an ITS refactor, and the bulk of
// the new version's functions are reused.
func TestDiffChurnMatchesChains(t *testing.T) {
	for _, spec := range synth.ChainDataset() {
		c := chainFor(t, spec)
		for i, st := range c.Steps {
			d, err := Diff(c.Versions[i].Packed, c.Versions[i+1].Packed, DefaultDiffOptions())
			if err != nil {
				t.Fatalf("seed %d step %d: %v", spec.Seed, i, err)
			}
			r := d.Report
			wantAppeared := expectedChurn(t, &c.Versions[i+1].Manifest, st.Appeared)
			if got := reportChurn(r, func(td *evolve.TargetDiff) []evolve.Alert { return td.Appeared }); !reflect.DeepEqual(got, wantAppeared) {
				t.Errorf("seed %d step %d (%s): appeared = %v, want %v", spec.Seed, i, st.Kind, got, wantAppeared)
			}
			wantFixed := expectedChurn(t, &c.Versions[i].Manifest, st.Fixed)
			if got := reportChurn(r, func(td *evolve.TargetDiff) []evolve.Alert { return td.Fixed }); !reflect.DeepEqual(got, wantFixed) {
				t.Errorf("seed %d step %d (%s): fixed = %v, want %v", spec.Seed, i, st.Kind, got, wantFixed)
			}
			if r.AlertsPersisted == 0 {
				t.Errorf("seed %d step %d (%s): no persisted alerts", spec.Seed, i, st.Kind)
			}

			if st.Kind == synth.StepRenameExport {
				found := false
				for _, td := range r.Targets {
					for _, rn := range td.Renames {
						if rn.OldName == st.RenamedFrom && rn.NewName == st.RenamedTo {
							found = true
						}
					}
				}
				if !found {
					t.Errorf("seed %d step %d: rename %s -> %s not recovered by similarity fallback",
						spec.Seed, i, st.RenamedFrom, st.RenamedTo)
				}
			}

			// The inferred-source set is stable across every step except an
			// ITS refactor, which may re-home one source to a new entry.
			if st.Kind != synth.StepRefactorITS {
				if r.ITSAppeared != 0 || r.ITSFixed != 0 {
					t.Errorf("seed %d step %d (%s): ITS churn appeared=%d fixed=%d, want none",
						spec.Seed, i, st.Kind, r.ITSAppeared, r.ITSFixed)
				}
			} else if r.ITSAppeared != r.ITSFixed {
				t.Errorf("seed %d step %d: ITS refactor churn unbalanced: appeared=%d fixed=%d",
					spec.Seed, i, r.ITSAppeared, r.ITSFixed)
			}

			// One mutated function out of a hundred-plus: nearly everything
			// must have been reused.
			if r.ReuseRatio < 0.9 {
				t.Errorf("seed %d step %d (%s): reuse ratio %.2f (%d/%d), want >= 0.9",
					spec.Seed, i, st.Kind, r.ReuseRatio, r.ReusedFuncs, r.TotalFuncs)
			}
		}
	}
}

// TestDiffIdenticalVersions diffs an image against itself: everything
// persists, nothing churns, and every function is reused.
func TestDiffIdenticalVersions(t *testing.T) {
	c := chainFor(t, synth.ChainDataset()[0])
	raw := c.Versions[0].Packed
	d, err := Diff(raw, raw, DefaultDiffOptions())
	if err != nil {
		t.Fatal(err)
	}
	r := d.Report
	if r.AlertsAppeared != 0 || r.AlertsFixed != 0 || r.ITSAppeared != 0 || r.ITSFixed != 0 {
		t.Errorf("self-diff churned: %+v", r)
	}
	if r.AlertsPersisted == 0 || r.ITSPersisted == 0 {
		t.Error("self-diff reports nothing persisted")
	}
	if r.ReuseRatio != 1 {
		t.Errorf("self-diff reuse ratio = %.2f (%d/%d), want 1", r.ReuseRatio, r.ReusedFuncs, r.TotalFuncs)
	}
	for _, td := range r.Targets {
		if td.MatchedIdentical == 0 || td.UnmatchedNew != 0 || td.UnmatchedOld != 0 {
			t.Errorf("self-diff alignment for %s: %+v", td.Path, td)
		}
	}
}
